"""Chaos recovery: crashed runs emit exactly the failure-free results.

The tentpole invariant of the fault subsystem — checkpoints + bounded
replay + held-delivery buffers + dedup make the final join-result
multiset of a run with injected PE crashes bit-identical to the same
run without faults.
"""

import random
from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JoinType, Op, QuerySpec, WindowSpec
from repro.dspe import (
    FaultConfig,
    Grouping,
    Operator,
    RecoveryConfig,
    RouterOperator,
    Topology,
)
from repro.dspe.router import RawTuple
from repro.joins import (
    SPOConfig,
    build_chain_topology,
    build_nlj_topology,
    build_spo_local_topology,
    run_spo,
    run_topology,
)

WINDOW = WindowSpec.count(100, 20)


def q3():
    return QuerySpec.two_inequalities("Q3", JoinType.SELF, Op.GT, Op.LT)


def q1():
    return QuerySpec.two_inequalities("Q1", JoinType.CROSS, Op.LT, Op.GT)


def make_raws(n, streams, seed, hi=25):
    rng = random.Random(seed)
    return [
        RawTuple(
            rng.choice(streams),
            (rng.randint(0, hi), rng.randint(0, hi)),
            i * 0.001,
        )
        for i in range(n)
    ]


def source_of(raws):
    return ((raw.event_time, raw) for raw in raws)


def result_multiset(res):
    combined = defaultdict(set)
    for name in ("result", "mutable_result", "immutable_result"):
        for record in res.records_named(name):
            combined[record.payload["tid"]].update(record.payload["matches"])
    return dict(combined)


class TestChainChaos:
    def test_two_pe_failures_bit_identical(self, q3_query):
        """The acceptance invariant: >=2 distinct joiner-PE failures."""
        raws = make_raws(400, ["NYC"], seed=50)

        def build():
            return build_chain_topology(
                source_of(raws), q3_query, WINDOW, joiner_pes=2
            )

        baseline = run_topology(build())
        chaos = run_topology(
            build(),
            faults=FaultConfig(
                crash_times=[("joiner", 0, 0.12), ("joiner", 1, 0.27)]
            ),
            recovery=RecoveryConfig(checkpoint_interval=0.05),
            fault_seed=1,
        )
        assert chaos.recovery.crashes == 2
        assert chaos.recovery.divergent_records == 0
        assert result_multiset(chaos) == result_multiset(baseline)
        assert chaos.result_fingerprint() == baseline.result_fingerprint()

    def test_repeated_crash_of_same_pe(self, q3_query):
        # Second crash lands before the next periodic checkpoint: the
        # kept replay log must cover it.
        raws = make_raws(300, ["NYC"], seed=51)

        def build():
            return build_chain_topology(
                source_of(raws), q3_query, WINDOW, joiner_pes=2
            )

        baseline = run_topology(build())
        chaos = run_topology(
            build(),
            faults=FaultConfig(
                crash_times=[("joiner", 0, 0.10), ("joiner", 0, 0.13)],
                restart_delay=0.002,
            ),
            recovery=RecoveryConfig(checkpoint_interval=0.1),
            fault_seed=2,
        )
        assert chaos.recovery.crashes == 2
        assert result_multiset(chaos) == result_multiset(baseline)

    def test_tiny_replay_capacity_forces_checkpoints(self, q3_query):
        raws = make_raws(300, ["NYC"], seed=52)

        def build():
            return build_chain_topology(
                source_of(raws), q3_query, WINDOW, joiner_pes=2
            )

        baseline = run_topology(build())
        chaos = run_topology(
            build(),
            faults=FaultConfig(crash_rate=4.0, horizon=0.25),
            recovery=RecoveryConfig(
                checkpoint_interval=None, replay_capacity=8
            ),
            fault_seed=3,
        )
        assert chaos.recovery.forced_checkpoints > 0
        assert result_multiset(chaos) == result_multiset(baseline)


class TestNLJChaos:
    @pytest.mark.parametrize("mode", ["sj", "bchj"])
    def test_crashes_bit_identical(self, q1_query, mode):
        raws = make_raws(300, ["R", "S"], seed=53)

        def build():
            return build_nlj_topology(
                source_of(raws), q1_query, WINDOW, mode=mode, joiner_pes=2
            )

        baseline = run_topology(build())
        chaos = run_topology(
            build(),
            faults=FaultConfig(
                crash_times=[("joiner", 0, 0.08), ("joiner", 1, 0.2)]
            ),
            fault_seed=4,
        )
        assert chaos.recovery.crashes == 2
        assert result_multiset(chaos) == result_multiset(baseline)
        assert chaos.result_fingerprint() == baseline.result_fingerprint()


class TestDeterminism:
    def test_same_fault_seed_same_run(self, q3_query):
        """Satellite: one fault_seed makes a whole chaos run reproducible."""
        raws = make_raws(300, ["NYC"], seed=54)

        def run(seed):
            return run_topology(
                build_chain_topology(
                    source_of(raws), q3_query, WINDOW, joiner_pes=2
                ),
                faults=FaultConfig(crash_rate=5.0, horizon=0.25),
                spout_loss_rate=0.05,
                fault_seed=seed,
            )

        a, b = run(9), run(9)
        assert a.fault_plan.fingerprint() == b.fault_plan.fingerprint()
        assert a.result_fingerprint() == b.result_fingerprint()
        assert a.recovery.crashes == b.recovery.crashes
        assert a.recovery.replayed_tuples == b.recovery.replayed_tuples
        assert result_multiset(a) == result_multiset(b)

        # A different seed yields a different plan (results may then
        # legitimately differ too: fault_seed drives the at-least-once
        # loss RNG, and redelivery order changes router tid assignment).
        c = run(10)
        assert c.fault_plan.fingerprint() != a.fault_plan.fingerprint()

    def test_fault_seed_drives_loss_rng(self, q3_query):
        raws = make_raws(200, ["NYC"], seed=55)

        def run(seed):
            return run_topology(
                build_chain_topology(
                    source_of(raws), q3_query, WINDOW, joiner_pes=2
                ),
                spout_loss_rate=0.1,
                fault_seed=seed,
            )

        assert run(3).result_fingerprint() == run(3).result_fingerprint()


class TestDelaySpikes:
    def test_spikes_change_timing_not_results(self, q3_query):
        # Single-path topology (router -> joiner broadcast): per-link
        # FIFO is preserved under spikes, so each joiner PE sees the
        # same delivery sequence and the results cannot change.  (The
        # fully distributed SPO DAG races merge material against data
        # tuples across links, so its result split is timing-dependent
        # by design — exactness there is only asserted at default
        # delays, as in the seed tests.)
        raws = make_raws(250, ["NYC"], seed=56)

        def build():
            return build_chain_topology(
                source_of(raws), q3_query, WINDOW, joiner_pes=2
            )

        baseline = run_topology(build())
        spiky = run_topology(
            build(),
            faults=FaultConfig(
                delay_spike_rate=4.0,
                delay_spike_duration=0.03,
                delay_spike_multiplier=20.0,
                horizon=0.25,
            ),
            fault_seed=6,
        )
        assert spiky.fault_plan is not None
        assert len(spiky.fault_plan.delay_spikes) > 0
        assert result_multiset(spiky) == result_multiset(baseline)
        assert spiky.sim_end > baseline.sim_end

    def test_cache_partitions_reach_the_config_cache(self, q3_query):
        raws = make_raws(100, ["NYC"], seed=57)
        config = SPOConfig(
            q3_query,
            WINDOW,
            num_pojoin_pes=1,
            faults=FaultConfig(
                cache_partition_rate=3.0, horizon=0.1
            ),
            fault_seed=8,
        )
        res = run_spo(source_of(raws), config)
        assert res.fault_plan.cache_partitions
        assert config.cache.partitions == res.fault_plan.cache_partitions


class _TagWorker(Operator):
    """Stateless sink that tags each routed tuple with its PE index.

    Under a round-robin in-edge, its result multiset is a transcript of
    the rotation: any drift in the router's ``_rr_counter`` across a
    crash shows up as tuples landing on the wrong PE.
    """

    def process(self, payload, ctx) -> None:
        ctx.record(
            "result", {"tid": payload.tid, "matches": [ctx.pe_index]}
        )


class TestRoundRobinRouterChaos:
    """Satellite: round-robin routing state survives a router crash.

    The rr counter lives in the topology's Grouping, outside the
    operator, so an operator-only checkpoint misses it; the engine
    snapshots it alongside and dry-advances it through replay.  These
    runs fail without both halves.
    """

    @staticmethod
    def _build(raws):
        topo = Topology("rr-router")
        topo.add_spout("source", source_of(raws))
        topo.add_bolt(
            "router",
            RouterOperator,
            inputs=[("source", Grouping.shuffle())],
        )
        topo.add_bolt(
            "worker",
            _TagWorker,
            parallelism=3,
            inputs=[("router", Grouping.round_robin())],
        )
        return topo

    def test_router_crash_preserves_rotation(self):
        raws = make_raws(300, ["NYC"], seed=58)
        baseline = run_topology(self._build(raws))
        chaos = run_topology(
            self._build(raws),
            faults=FaultConfig(
                crash_times=[("router", 0, 0.12), ("router", 0, 0.22)]
            ),
            recovery=RecoveryConfig(checkpoint_interval=0.05),
            fault_seed=11,
        )
        assert chaos.recovery.crashes == 2
        assert result_multiset(chaos) == result_multiset(baseline)
        assert chaos.result_fingerprint() == baseline.result_fingerprint()

    def test_router_crash_before_first_checkpoint(self):
        # No checkpoint yet: the replay log covers the whole history and
        # the rotation must restart from zero before dry-advancing.
        raws = make_raws(200, ["NYC"], seed=59)
        baseline = run_topology(self._build(raws))
        chaos = run_topology(
            self._build(raws),
            faults=FaultConfig(crash_times=[("router", 0, 0.02)]),
            recovery=RecoveryConfig(checkpoint_interval=0.5),
            fault_seed=12,
        )
        assert chaos.recovery.crashes == 1
        assert result_multiset(chaos) == result_multiset(baseline)
        assert chaos.result_fingerprint() == baseline.result_fingerprint()


class TestChaosProperty:
    """Satellite: crashes + replay == failure-free multiset, any batch."""

    @settings(max_examples=10, deadline=None)
    @given(
        batch_size=st.sampled_from([1, 7, 64]),
        self_join=st.booleans(),
        crash_rate=st.floats(min_value=1.0, max_value=8.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_crash_replay_exact(self, batch_size, self_join, crash_rate, seed):
        query = q3() if self_join else q1()
        streams = ["NYC"] if self_join else ["R", "S"]
        raws = make_raws(220, streams, seed=seed % 100)

        def build():
            return build_spo_local_topology(
                source_of(raws), query, WINDOW, batch_size=batch_size
            )

        baseline = run_topology(build())
        chaos = run_topology(
            build(),
            faults=FaultConfig(crash_rate=crash_rate, horizon=0.2),
            recovery=RecoveryConfig(checkpoint_interval=0.04),
            fault_seed=seed,
        )
        assert chaos.recovery.divergent_records == 0
        assert result_multiset(chaos) == result_multiset(baseline)
        assert chaos.result_fingerprint() == baseline.result_fingerprint()
