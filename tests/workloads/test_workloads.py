"""Workload generators: distributions, selectivity control, query specs."""

import pytest

from repro.core import JoinType, Op
from repro.core.iejoin import ie_join_count, ie_self_join_count
from repro.workloads import (
    TABLE1,
    as_stream_tuples,
    blond_readings,
    cross_stream,
    datacenter_streams,
    equi_q,
    equi_stream,
    interleave,
    q1,
    q2,
    q2_stream,
    q3,
    q3_stream,
    self_stream,
    shift_for_selectivity,
    taxi_trips,
    timed,
)


class TestQueries:
    def test_q1_shape(self):
        q = q1()
        assert q.join_type is JoinType.CROSS
        assert [p.op for p in q.predicates] == [Op.LT, Op.GT]
        assert q.field_names == ("POWER", "COOL")

    def test_q2_shape(self):
        q = q2()
        assert q.join_type is JoinType.BAND
        assert q.predicates[0].width == pytest.approx(0.03)

    def test_q3_shape(self):
        q = q3()
        assert q.join_type is JoinType.SELF
        assert [p.op for p in q.predicates] == [Op.GT, Op.LT]

    def test_equi_shape(self):
        q = equi_q()
        assert q.predicates[0].op is Op.EQ

    def test_table1_inventory(self):
        assert len(TABLE1) == 5
        assert {row.query for row in TABLE1} == {"Q1", "Q2", "Q3"}
        assert all(row.repo_tuples > 0 for row in TABLE1)


class TestShiftForSelectivity:
    @pytest.mark.parametrize("sigma", [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0])
    def test_inverts_probability(self, sigma):
        c = shift_for_selectivity(sigma)
        if c >= 0:
            p = (1 - c * c) / 2 + c
        else:
            p = (1 - abs(c)) ** 2 / 2
        assert p == pytest.approx(sigma, abs=1e-9)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            shift_for_selectivity(1.5)

    @pytest.mark.parametrize("sigma", [0.2, 0.5, 0.8])
    def test_empirical_selectivity(self, sigma):
        from repro.core import Predicate, QuerySpec

        left = as_stream_tuples(cross_stream(400, "R", (sigma,), seed=1))
        right = as_stream_tuples(
            cross_stream(400, "S", (sigma,), is_right=True, seed=2),
            start_tid=1000,
        )
        q = QuerySpec("q", JoinType.CROSS, [Predicate(0, Op.LT, 0)])
        measured = ie_join_count(left, right, q) / (400 * 400)
        assert measured == pytest.approx(sigma, abs=0.08)


class TestSelfStream:
    def test_correlation_controls_match_rate(self):
        q = q3()
        rates = []
        for corr in (-0.9, 0.0, 0.9):
            tuples = as_stream_tuples(self_stream(300, correlation=corr, seed=3))
            rates.append(ie_self_join_count(tuples, q) / (300 * 299))
        # Anticorrelated fields match most, correlated least.
        assert rates[0] > rates[1] > rates[2]

    def test_correlation_bounds(self):
        with pytest.raises(ValueError):
            self_stream(10, correlation=2.0)


class TestTaxi:
    def test_field_layout(self):
        trips = taxi_trips(100, seed=4)
        assert all(len(t.values) == 4 for t in trips)
        dists = [t.values[0] for t in trips]
        fares = [t.values[1] for t in trips]
        assert all(d > 0 for d in dists)
        assert all(f >= 2.5 for f in fares)

    def test_fare_correlates_with_distance(self):
        trips = taxi_trips(2000, seed=5)
        long_trips = [t for t in trips if t.values[0] > 5]
        short_trips = [t for t in trips if t.values[0] < 1]
        avg = lambda ts: sum(t.values[1] for t in ts) / len(ts)
        assert avg(long_trips) > avg(short_trips)

    def test_projections(self):
        assert all(len(t.values) == 2 for t in q3_stream(50, seed=6))
        lonlat = q2_stream(50, seed=6)
        assert all(-75 < t.values[0] < -73 for t in lonlat)
        assert all(40 < t.values[1] < 42 for t in lonlat)

    def test_event_times_increase(self):
        trips = taxi_trips(100, seed=7, rate=100.0)
        times = [t.event_time for t in trips]
        assert times == sorted(times)


class TestBlond:
    def test_power_is_positive(self):
        readings = blond_readings(200, seed=8)
        assert all(t.values[0] > 0 and t.values[1] > 0 for t in readings)

    def test_datacenter_asymmetry(self):
        merged = datacenter_streams(500, seed=9)
        r_power = [t.values[0] for t in merged if t.stream == "R"]
        s_power = [t.values[0] for t in merged if t.stream == "S"]
        r_ratio = [t.values[1] / t.values[0] for t in merged if t.stream == "R"]
        s_ratio = [t.values[1] / t.values[0] for t in merged if t.stream == "S"]
        avg = lambda xs: sum(xs) / len(xs)
        assert avg(r_power) < avg(s_power)  # R is the smaller data center
        assert avg(r_ratio) > avg(s_ratio)  # but cools less efficiently

    def test_merged_order_is_chronological(self):
        merged = datacenter_streams(100, seed=10)
        times = [t.event_time for t in merged]
        assert times == sorted(times)

    def test_q1_has_matches(self):
        from repro.core import ie_join

        merged = datacenter_streams(200, seed=11)
        tuples = as_stream_tuples(merged)
        left = [t for t in tuples if t.stream == "R"]
        right = [t for t in tuples if t.stream == "S"]
        pairs = ie_join(left, right, q1())
        assert 0 < len(pairs) < len(left) * len(right)


class TestHelpers:
    def test_interleave(self):
        a = cross_stream(3, "R", seed=12)
        b = cross_stream(2, "S", seed=13)
        merged = interleave(a, b)
        assert [t.stream for t in merged] == ["R", "S", "R", "S", "R"]

    def test_timed_assigns_rate(self):
        raws = cross_stream(10, "R", seed=14)
        events = list(timed(raws, rate=100.0))
        assert events[1][0] - events[0][0] == pytest.approx(0.01)
        assert events[0][1].event_time == 0.0

    def test_timed_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            list(timed([], rate=0))

    def test_as_stream_tuples_ids(self):
        raws = equi_stream(5, "R", seed=15)
        tuples = as_stream_tuples(raws, start_tid=10)
        assert [t.tid for t in tuples] == [10, 11, 12, 13, 14]
