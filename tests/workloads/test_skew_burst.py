"""Skewed and bursty workload generators."""

from collections import Counter

import pytest

from repro.workloads import bursty, equi_stream, zipf_equi_stream


class TestZipf:
    def test_skew_concentrates_keys(self):
        uniform = Counter(
            r.values[0] for r in zipf_equi_stream(2000, "R", 100, skew=0.0, seed=1)
        )
        skewed = Counter(
            r.values[0] for r in zipf_equi_stream(2000, "R", 100, skew=1.5, seed=1)
        )
        assert skewed.most_common(1)[0][1] > 3 * uniform.most_common(1)[0][1]

    def test_zero_skew_close_to_uniform(self):
        counts = Counter(
            r.values[0] for r in zipf_equi_stream(5000, "R", 10, skew=0.0, seed=2)
        )
        assert max(counts.values()) < 2 * min(counts.values())

    def test_keys_in_domain(self):
        raws = zipf_equi_stream(500, "R", num_keys=7, skew=1.0, seed=3)
        assert all(0 <= r.values[0] < 7 for r in raws)

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            zipf_equi_stream(10, "R", skew=-1.0)


class TestBursty:
    def test_burst_compresses_interarrival(self):
        raws = equi_stream(300, "R", seed=4)
        events = list(
            bursty(raws, base_rate=100.0, burst_rate=10_000.0,
                   burst_every=100, burst_len=20)
        )
        times = [at for at, __ in events]
        assert times == sorted(times)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Burst gaps are ~100x tighter than base gaps.
        assert min(gaps) < max(gaps) / 50

    def test_event_times_written_back(self):
        raws = equi_stream(10, "R", seed=5)
        events = list(bursty(raws, 100.0, 1000.0))
        for at, raw in events:
            assert raw.event_time == at

    def test_validation(self):
        with pytest.raises(ValueError):
            list(bursty([], 0.0, 1.0))
        with pytest.raises(ValueError):
            list(bursty([], 1.0, 1.0, burst_every=0))
