"""Integration tests for the process-backed executor.

The determinism contract under test: running a topology's leaf PEs as
real worker processes changes wall-clock only — the result fingerprint
is bit-identical to the simulated single-process run at every worker
count and batch size.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.window import WindowSpec
from repro.dspe import Grouping, Topology
from repro.dspe.topology import Operator
from repro.joins import (
    build_chain_topology,
    build_nlj_topology,
    build_spo_local_topology,
    build_spo_sharded_topology,
    run_topology,
)
from repro.parallel import ParallelExecutor, WorkerCrash, reduce_sharded_result
from repro.workloads import q3, self_stream, timed

WORKER_COUNTS = (1, 2, 4)
BATCH_SIZES = (1, 7, 64)
N = 400
WINDOW = WindowSpec.count(150, 50)


def _source():
    return timed(self_stream(N, correlation=0.4, seed=7), rate=1000.0)


def _no_leaked_children():
    return [p for p in multiprocessing.active_children()]


BUILDERS = {
    "chain": lambda bs: build_chain_topology(
        _source(), q3(), WINDOW, joiner_pes=4, batch_size=bs
    ),
    "nlj": lambda bs: build_nlj_topology(
        _source(), q3(), WINDOW, joiner_pes=4, batch_size=bs
    ),
    "spo_local": lambda bs: build_spo_local_topology(
        _source(), q3(), WINDOW, batch_size=bs
    ),
}


@pytest.mark.parametrize("name", sorted(BUILDERS))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_parallel_matches_simulated(name, batch_size):
    build = BUILDERS[name]
    reference = run_topology(build(batch_size)).result_fingerprint()
    for num_workers in WORKER_COUNTS:
        result = ParallelExecutor(build(batch_size), num_workers=num_workers).run()
        assert result.result_fingerprint() == reference, (
            f"{name} diverged at workers={num_workers}, "
            f"batch_size={batch_size}"
        )
    assert not _no_leaked_children()


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_sharded_spo_matches_simulated_reference(batch_size):
    reference = run_topology(
        build_spo_local_topology(_source(), q3(), WINDOW, batch_size=batch_size)
    ).result_fingerprint()
    simulated = run_topology(
        build_spo_sharded_topology(
            _source(), q3(), WINDOW, 3, batch_size=batch_size
        )
    )
    reduce_sharded_result(simulated)
    assert simulated.result_fingerprint() == reference
    for num_workers in WORKER_COUNTS:
        result = ParallelExecutor(
            build_spo_sharded_topology(
                _source(), q3(), WINDOW, 3, batch_size=batch_size
            ),
            num_workers=num_workers,
        ).run()
        reduce_sharded_result(result)
        assert result.result_fingerprint() == reference, (
            f"sharded run diverged at workers={num_workers}, "
            f"batch_size={batch_size}"
        )
    assert not _no_leaked_children()


def test_unreduced_sharded_run_has_empty_fingerprint():
    # Fail-safe: forgetting reduce_sharded_result can never silently
    # compare equal to a real result stream.
    result = ParallelExecutor(
        build_spo_sharded_topology(_source(), q3(), WINDOW, 3, batch_size=7),
        num_workers=2,
    ).run()
    unreduced = result.result_fingerprint()
    assert unreduced != reduce_sharded_result(result).result_fingerprint()


def test_records_are_canonically_ordered():
    result = ParallelExecutor(
        build_spo_local_topology(_source(), q3(), WINDOW, batch_size=7),
        num_workers=2,
    ).run()
    tids = [r.payload["tid"] for r in result.records if r.name == "result"]
    assert tids == sorted(tids)
    assert len(tids) == N


class _CrashingOperator(Operator):
    """Raises on the Nth delivery inside the worker."""

    def __init__(self, crash_at: int) -> None:
        self.crash_at = crash_at
        self.seen = 0

    def process(self, payload, ctx) -> None:
        self.seen += 1
        if self.seen >= self.crash_at:
            raise RuntimeError("synthetic operator failure")


class _EmittingLeaf(Operator):
    def process(self, payload, ctx) -> None:
        ctx.emit(payload)


def _leaf_topology(operator_factory) -> Topology:
    topo = Topology()
    topo.add_spout("source", [(0.001 * i, i) for i in range(200)])
    topo.add_bolt(
        "leaf",
        operator_factory,
        parallelism=2,
        inputs=[("source", Grouping.broadcast())],
    )
    return topo


def test_worker_crash_raises_cleanly_without_hang_or_zombies():
    executor = ParallelExecutor(
        _leaf_topology(lambda: _CrashingOperator(50)),
        num_workers=2,
        join_timeout=15.0,
    )
    with pytest.raises(WorkerCrash) as excinfo:
        executor.run()
    assert "synthetic operator failure" in str(excinfo.value)
    assert "leaf[" in str(excinfo.value)
    assert excinfo.value.worker_traceback
    # Every worker process was terminated and joined; none leak.
    assert all(not proc.is_alive() for proc in executor._procs)
    assert not _no_leaked_children()


def test_leaf_emission_is_rejected():
    executor = ParallelExecutor(
        _leaf_topology(lambda: _EmittingLeaf()), num_workers=2
    )
    with pytest.raises(WorkerCrash) as excinfo:
        executor.run()
    assert "cannot emit" in str(excinfo.value)
    assert not _no_leaked_children()


class _RngLeaf(Operator):
    """Records one rng draw per delivery — exposes the worker seed."""

    def process(self, payload, ctx) -> None:
        ctx.record("draw", {"tid": payload, "value": ctx.rng.random()})


def test_worker_rng_spawns_deterministically_from_run_seed():
    def build():
        return _leaf_topology(lambda: _RngLeaf())

    def draws(seed):
        result = ParallelExecutor(build(), num_workers=2, seed=seed).run()
        return [r.payload["value"] for r in result.records if r.name == "draw"]

    first, second = draws(11), draws(11)
    assert first == second  # same root seed -> identical worker streams
    assert draws(12) != first  # seed participates
    assert not _no_leaked_children()


def test_topology_without_leaf_bolts_is_rejected():
    topo = Topology()
    topo.add_spout("source", [(0.0, 1)])
    with pytest.raises(ValueError):
        ParallelExecutor(topo, num_workers=2)
