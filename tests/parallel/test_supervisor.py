"""Worker supervision: chaos parity, stall detection, spawn parity.

The robustness contract under test: with seeded worker kills and stalls
injected into the process-backed executor, every run still produces a
result fingerprint bit-identical to the failure-free simulated
single-process reference — at every worker count and batch size — the
supervisor reports the recoveries it performed, and no child process
outlives its run.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window import WindowSpec
from repro.dspe import (
    ProcessFaultConfig,
    WorkerFaultEvent,
    WorkerFaultPlan,
    build_process_fault_plan,
)
from repro.joins import (
    build_spo_local_topology,
    build_spo_sharded_topology,
    run_topology,
)
from repro.parallel import (
    ParallelExecutor,
    SupervisorConfig,
    WorkerCrash,
    reduce_sharded_result,
)
from repro.workloads import q3, self_stream, timed

WORKER_COUNTS = (1, 2, 4)
BATCH_SIZES = (1, 7, 64)
N = 400
WINDOW = WindowSpec.count(150, 50)
NUM_SHARDS = 3

_REFERENCE_CACHE = {}


def _source():
    return timed(self_stream(N, correlation=0.4, seed=7), rate=1000.0)


def _reference(batch_size):
    if batch_size not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[batch_size] = run_topology(
            build_spo_local_topology(
                _source(), q3(), WINDOW, batch_size=batch_size
            )
        ).result_fingerprint()
    return _REFERENCE_CACHE[batch_size]


def _run_chaos(num_workers, batch_size, plan, **executor_kwargs):
    topo = build_spo_sharded_topology(
        _source(), q3(), WINDOW, NUM_SHARDS, batch_size=batch_size
    )
    executor_kwargs.setdefault(
        "supervisor",
        SupervisorConfig(
            heartbeat_interval=0.1, liveness_timeout=1.5, max_restarts=8
        ),
    )
    result = ParallelExecutor(
        topo,
        num_workers=num_workers,
        process_faults=plan,
        **executor_kwargs,
    ).run()
    reduce_sharded_result(result)
    return result


class TestKillRecoveryParity:
    """Acceptance grid: injected kills at every worker count x batch."""

    @pytest.mark.parametrize("num_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_killed_run_matches_failure_free_reference(
        self, num_workers, batch_size
    ):
        plan = WorkerFaultPlan(
            [
                WorkerFaultEvent(0, 0, 5, kind="kill"),
                WorkerFaultEvent(
                    num_workers - 1, 0 if num_workers > 1 else 1, 11, kind="kill"
                ),
            ],
            seed=3,
        )
        result = _run_chaos(num_workers, batch_size, plan)
        assert result.result_fingerprint() == _reference(batch_size), (
            f"chaos diverged at workers={num_workers}, "
            f"batch_size={batch_size}"
        )
        assert result.supervisor is not None
        assert result.supervisor.restarts >= 1
        assert result.supervisor.crashes >= 1
        assert result.supervisor.gave_up is None
        assert not multiprocessing.active_children()

    def test_supervision_events_reach_observer(self):
        from repro.obs import Observer

        obs = Observer()
        plan = WorkerFaultPlan(
            [WorkerFaultEvent(0, 0, 9, kind="kill")], seed=1
        )
        result = _run_chaos(2, 7, plan, obs=obs)
        assert result.result_fingerprint() == _reference(7)
        counts = obs.events.counts()
        assert counts.get("worker_crash") == 1
        assert counts.get("worker_restart") == 1

    def test_report_surfaces_on_run_result(self):
        plan = WorkerFaultPlan([WorkerFaultEvent(0, 0, 9, kind="kill")], seed=1)
        result = _run_chaos(2, 7, plan)
        report = result.supervisor.as_dict()
        assert report["crashes"] == 1
        assert report["restarts"] >= 1
        assert report["per_worker"]["0"]["crashes"] == 1
        assert report["gave_up"] is None

    def test_failure_free_run_reports_clean(self):
        result = _run_chaos(2, 7, None)
        assert result.result_fingerprint() == _reference(7)
        report = result.supervisor
        assert report.crashes == 0
        assert report.stalls == 0
        assert report.restarts == 0
        assert report.duplicates_dropped == 0

    def test_repeated_kills_of_one_worker_across_incarnations(self):
        plan = WorkerFaultPlan(
            [
                WorkerFaultEvent(0, 0, 4, kind="kill"),
                WorkerFaultEvent(0, 1, 6, kind="kill"),
                WorkerFaultEvent(0, 2, 8, kind="kill"),
            ],
            seed=5,
        )
        result = _run_chaos(2, 7, plan)
        assert result.result_fingerprint() == _reference(7)
        assert result.supervisor.crashes == 3
        assert result.supervisor.restarts == 3
        assert not multiprocessing.active_children()

    def test_kill_during_replay_does_not_double_feed(self):
        # The second kill lands on the respawned incarnation's 2nd
        # message — while the parent is still feeding the first
        # recovery's replay.  The nested recovery must take over the
        # replay entirely; feeding the outer loop's remainder on top of
        # it would process those messages twice and corrupt the window.
        plan = WorkerFaultPlan(
            [
                WorkerFaultEvent(0, 0, 9, kind="kill"),
                WorkerFaultEvent(0, 1, 2, kind="kill"),
            ],
            seed=6,
        )
        result = _run_chaos(2, 7, plan)
        assert result.result_fingerprint() == _reference(7)
        assert result.supervisor.crashes == 2
        assert not multiprocessing.active_children()

    def test_no_divergent_records_under_chaos(self):
        plan = WorkerFaultPlan(
            [WorkerFaultEvent(0, 0, 15, kind="kill")], seed=2
        )
        result = _run_chaos(2, 7, plan)
        # Replayed records must collide byte-for-byte with the originals;
        # a divergence would mean the checkpoint/replay path is broken.
        assert result.supervisor.divergent_records == 0

    def test_give_up_after_max_restarts(self):
        plan = WorkerFaultPlan(
            [
                WorkerFaultEvent(0, inc, 1, kind="kill")
                for inc in range(4)
            ],
            seed=1,
        )
        with pytest.raises(WorkerCrash, match="consecutive"):
            _run_chaos(
                2,
                7,
                plan,
                supervisor=SupervisorConfig(max_restarts=2),
            )
        assert not multiprocessing.active_children()


class TestStallDetection:
    def test_hung_worker_recovered_within_liveness_window(self):
        # The stall sleeps far longer than the whole run; finishing
        # quickly proves the supervisor detected the hang via the
        # missed heartbeat and recovered instead of waiting it out.
        liveness = 1.0
        plan = WorkerFaultPlan(
            [WorkerFaultEvent(0, 0, 8, kind="stall", stall_seconds=60.0)],
            seed=1,
        )
        start = time.monotonic()
        result = _run_chaos(
            2,
            7,
            plan,
            supervisor=SupervisorConfig(
                heartbeat_interval=0.1, liveness_timeout=liveness
            ),
        )
        elapsed = time.monotonic() - start
        assert result.result_fingerprint() == _reference(7)
        assert result.supervisor.stalls == 1
        assert result.supervisor.restarts >= 1
        assert elapsed < 20.0, f"stall rode out the sleep ({elapsed:.1f}s)"
        assert not multiprocessing.active_children()


class TestSpawnContext:
    def test_invalid_context_rejected(self):
        topo = build_spo_sharded_topology(
            _source(), q3(), WINDOW, NUM_SHARDS, batch_size=7
        )
        with pytest.raises(ValueError, match="mp_context"):
            ParallelExecutor(topo, num_workers=2, mp_context="thread")

    def test_spawn_parity(self):
        topo = build_spo_sharded_topology(
            _source(), q3(), WINDOW, NUM_SHARDS, batch_size=7
        )
        result = ParallelExecutor(
            topo, num_workers=2, mp_context="spawn"
        ).run()
        reduce_sharded_result(result)
        assert result.result_fingerprint() == _reference(7)
        assert not multiprocessing.active_children()

    def test_spawn_recovers_from_kill(self):
        # Respawn under spawn pickles the checkpoint blob and the leaf
        # factories; parity here proves both survive the round-trip.
        plan = WorkerFaultPlan(
            [WorkerFaultEvent(0, 0, 20, kind="kill")], seed=1
        )
        result = _run_chaos(2, 7, plan, mp_context="spawn")
        assert result.result_fingerprint() == _reference(7)
        assert result.supervisor.restarts >= 1
        assert not multiprocessing.active_children()


class TestForcedCheckpoints:
    def test_small_replay_capacity_forces_checkpoints(self):
        plan = WorkerFaultPlan(
            [WorkerFaultEvent(0, 0, 30, kind="kill")], seed=4
        )
        result = _run_chaos(
            2,
            7,
            plan,
            supervisor=SupervisorConfig(replay_capacity=8, max_restarts=8),
        )
        assert result.result_fingerprint() == _reference(7)
        report = result.supervisor
        assert report.forced_checkpoint_requests >= 1
        assert report.checkpoints >= 1


def _event_strategy(num_workers):
    kills = st.builds(
        WorkerFaultEvent,
        worker=st.integers(0, num_workers - 1),
        incarnation=st.integers(0, 1),
        at_message=st.integers(1, 40),
        kind=st.just("kill"),
    )
    stalls = st.builds(
        WorkerFaultEvent,
        worker=st.integers(0, num_workers - 1),
        incarnation=st.just(0),
        at_message=st.integers(1, 40),
        kind=st.just("stall"),
        stall_seconds=st.just(60.0),
    )
    return st.lists(st.one_of(kills, stalls), min_size=1, max_size=3)


class TestChaosProperty:
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_any_seeded_fault_plan_preserves_results(self, data):
        num_workers = data.draw(
            st.sampled_from(WORKER_COUNTS), label="workers"
        )
        batch_size = data.draw(st.sampled_from(BATCH_SIZES), label="batch")
        events = data.draw(_event_strategy(num_workers), label="events")
        plan = WorkerFaultPlan(events, seed=9)
        result = _run_chaos(num_workers, batch_size, plan)
        assert result.result_fingerprint() == _reference(batch_size)
        assert result.supervisor.gave_up is None
        assert result.supervisor.divergent_records == 0
        assert not multiprocessing.active_children()


class TestPlanConstruction:
    def test_poisson_plan_runs_and_preserves_results(self):
        config = ProcessFaultConfig(kill_rate=1.0, horizon_messages=30)
        plan = build_process_fault_plan(config, num_workers=2, seed=6)
        assert plan.kill_count() >= 0
        result = _run_chaos(2, 7, plan if plan.kill_count() else None)
        assert result.result_fingerprint() == _reference(7)

    def test_same_seed_same_plan(self):
        config = ProcessFaultConfig(kill_rate=2.0, stall_rate=0.5)
        a = build_process_fault_plan(config, num_workers=4, seed=11)
        b = build_process_fault_plan(config, num_workers=4, seed=11)
        assert a.fingerprint() == b.fingerprint()
