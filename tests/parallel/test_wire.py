"""Wire-format regression tests: columnar batches cross process
boundaries as raw column buffers, bit-identically and without ever
materialising per-tuple objects."""

from __future__ import annotations

import pickle

import numpy as np

from repro.core.arena import ArenaSlice, ArenaTuple, TupleArena
from repro.dspe.router import ArenaBatch
from repro.parallel import ShardBatch


def _arena(n: int = 10) -> TupleArena:
    arena = TupleArena(capacity=n)
    for i in range(n):
        stream = "R" if i % 2 == 0 else "S"
        arena.append(100 + i, stream, (i * 0.5, 1000.0 - i * 0.25), i * 0.001)
    return arena


def _assert_bit_identical(a: ArenaSlice, b: ArenaSlice) -> None:
    assert len(a) == len(b)
    for i in range(a.arena.num_fields):
        col_a, col_b = a.field_values(i), b.field_values(i)
        assert col_a.dtype == col_b.dtype
        np.testing.assert_array_equal(col_a, col_b)
    np.testing.assert_array_equal(a.tid_values(), b.tid_values())
    assert [t.stream for t in a] == [t.stream for t in b]
    assert [t.event_time for t in a] == [t.event_time for t in b]


class _NoTupleViews:
    """Context manager failing the test if any ArenaTuple is built."""

    def __enter__(self):
        self._orig = ArenaTuple.__init__

        def forbidden(obj, arena, slot):
            raise AssertionError(
                "per-tuple view materialised during wire round-trip"
            )

        ArenaTuple.__init__ = forbidden
        return self

    def __exit__(self, *exc):
        ArenaTuple.__init__ = self._orig
        return False


def test_contiguous_slice_round_trip_bit_identical():
    sl = _arena().slice()
    _assert_bit_identical(ArenaSlice.from_wire(sl.to_wire()), sl)


def test_indexed_slice_round_trip_bit_identical():
    sl = _arena().slice().take(np.array([7, 0, 3, 3]))
    back = ArenaSlice.from_wire(sl.to_wire())
    _assert_bit_identical(back, sl)
    # The rebuilt slice is compacted: it owns exactly its rows.
    assert back.arena.size == 4


def test_slice_pickle_round_trip_without_tuple_views():
    sl = _arena().slice()
    with _NoTupleViews():
        payload = pickle.dumps(sl)
        back = pickle.loads(payload)
    _assert_bit_identical(back, sl)


def test_arena_batch_pickle_round_trip_without_tuple_views():
    sl = _arena().slice()
    batch = ArenaBatch(sl, origin_times=[0.1] * len(sl))
    with _NoTupleViews():
        back = pickle.loads(pickle.dumps(batch))
    _assert_bit_identical(back.slice, sl)
    assert back.origin_times == batch.origin_times


def test_shard_batch_pickle_round_trip_without_tuple_views():
    sl = _arena().slice()
    probes = sl.take(np.array([0, 2, 4]))
    stores = sl.take(np.array([1, 3]))
    shard_batch = ShardBatch(2, probes, stores, [0, 1, 2])
    with _NoTupleViews():
        back = pickle.loads(pickle.dumps(shard_batch))
    assert back.shard == 2
    assert back.stores_before == [0, 1, 2]
    _assert_bit_identical(back.probes, probes)
    _assert_bit_identical(back.stores, stores)


def test_arena_tuple_pickles_to_arena_tuple():
    arena = _arena()
    t = arena.view(3)
    back = pickle.loads(pickle.dumps(t))
    # The unpickled object is still a columnar view, not a boxed tuple.
    assert type(back) is ArenaTuple
    assert (back.tid, back.stream, back.values, back.event_time) == (
        t.tid,
        t.stream,
        t.values,
        t.event_time,
    )


def test_wire_owns_its_memory():
    arena = _arena()
    sl = arena.slice()
    wire = sl.to_wire()
    back = ArenaSlice.from_wire(wire)
    before = back.field_values(0).copy()
    # Mutating the source arena must not leak into the decoded slice.
    arena.fields[0][:] = -1.0
    np.testing.assert_array_equal(back.field_values(0), before)
