"""End-to-end tests for skew-adaptive repartitioning.

The contract: turning on adaptive repartitioning (live cut swaps plus
state migration at merge boundaries) changes *placement only* — the
result fingerprint stays bit-identical to the unsharded single-process
reference at every batch size and worker count, and the repartition
decisions themselves are identical across batch sizes.  Rider tests
cover the per-interval prefilter (expiry-aware range skipping) and the
NaN anchor invariant.
"""

from __future__ import annotations

import math
import multiprocessing
import random

import numpy as np
import pytest

from repro.core.window import WindowSpec
from repro.dspe import RawTuple
from repro.dspe.partitioning import RangeShards
from repro.joins import (
    build_spo_local_topology,
    build_spo_sharded_topology,
    run_topology,
)
from repro.parallel import (
    BalanceConfig,
    ParallelExecutor,
    ShardPrefilter,
    reduce_sharded_result,
)
from repro.workloads import q3, self_stream, skewed_self_stream, timed

N = 3000
WINDOW = WindowSpec.count(400, 100)
NUM_SHARDS = 4
RATE = 5000.0


def _balance() -> BalanceConfig:
    return BalanceConfig(
        imbalance_factor=1.3, min_live_tuples=300, cooldown_boundaries=2
    )


def _raws():
    # Hot band drifting downward through the run: static cuts pin one
    # shard early and the wrong shard late; the tracker must follow.
    return skewed_self_stream(
        N,
        hot_fraction=0.75,
        hot_center=0.85,
        hot_width=0.06,
        drift=-0.5,
        correlation=0.3,
        seed=13,
    )


def _reference(raws, batch_size):
    return run_topology(
        build_spo_local_topology(
            timed(raws, rate=RATE), q3(), WINDOW, batch_size=batch_size
        )
    ).result_fingerprint()


def _adaptive_topology(raws, batch_size):
    return build_spo_sharded_topology(
        timed(raws, rate=RATE),
        q3(),
        WINDOW,
        NUM_SHARDS,
        batch_size=batch_size,
        balance=_balance(),
    )


def _repartitions(result):
    return [r.payload for r in result.records if r.name == "repartition"]


def test_adaptive_simulated_parity_and_batch_invariance():
    raws = _raws()
    decisions_by_batch = []
    for batch_size in (1, 7, 64):
        result = run_topology(_adaptive_topology(raws, batch_size))
        decisions = _repartitions(result)
        reduce_sharded_result(result)
        assert result.result_fingerprint() == _reference(raws, batch_size), (
            f"adaptive run diverged from reference at batch_size={batch_size}"
        )
        decisions_by_batch.append(decisions)
        # The run exercised real migrations, not just cut swaps.
        joiners = [pe.operator for pe in result.pes_of("joiner")]
        assert sum(op.migrations for op in joiners) > 0
        assert sum(op.migrated_out for op in joiners) == sum(
            op.migrated_in for op in joiners
        )
    first = decisions_by_batch[0]
    assert len(first) >= 1
    assert sum(d["splits"] for d in first) >= 1
    assert sum(d["merges"] for d in first) >= 1
    # Decisions are count-based: identical cut sequence at every batch
    # size (micro-batch chunking must not leak into placement).
    assert decisions_by_batch[1] == first
    assert decisions_by_batch[2] == first


@pytest.mark.parametrize("num_workers", (1, 2, 4))
def test_adaptive_parallel_matches_simulated_reference(num_workers):
    raws = _raws()
    reference = _reference(raws, 7)
    result = ParallelExecutor(
        _adaptive_topology(raws, 7), num_workers=num_workers
    ).run()
    decisions = _repartitions(result)
    reduce_sharded_result(result)
    assert result.result_fingerprint() == reference, (
        f"adaptive run diverged at workers={num_workers}"
    )
    assert len(decisions) >= 1
    assert not multiprocessing.active_children()


class TestPrefilterExpiry:
    """Satellite fix: the second-predicate range skip must track the
    *live* window, not widen monotonically forever."""

    def test_expired_intervals_stop_widening(self):
        pf = ShardPrefilter(q3(), RangeShards.uniform(2))
        shard0 = np.array([0])
        pf.note_stores(shard0, np.array([0.95]))
        pf.on_boundary(0, keep_from=-3)
        # Q3's second predicate is LT: a probe at 0.5 can still match
        # the 0.95 store, so it is kept.
        assert pf.keep(0, np.array([0.5]))[0]
        for boundary in range(1, 5):
            pf.note_stores(shard0, np.array([0.1]))
            pf.on_boundary(boundary, keep_from=boundary - 3)
        # The 0.95 interval has left the window; the aggregate range
        # must shrink back to the live stores.
        assert pf.hi[0] == pytest.approx(0.1)
        assert not pf.keep(0, np.array([0.5]))[0]

    def test_nan_stores_do_not_poison_the_range(self):
        pf = ShardPrefilter(q3(), RangeShards.uniform(2))
        pf.note_stores(np.array([0, 0]), np.array([np.nan, 0.4]))
        assert pf.hi[0] == pytest.approx(0.4)
        assert pf.keep(0, np.array([0.2]))[0]


def _two_phase_raws():
    """Phase A: wide filter values everywhere.  Phase B: low shards only
    hold tiny filter values, while rare hot probes carry large ones —
    skippable only once phase A has expired from the prefilter."""
    rng = random.Random(5)
    out = []
    for __ in range(1200):
        out.append(RawTuple("T", (rng.random(), rng.random())))
    for i in range(1800):
        if i % 40 == 0:
            out.append(
                RawTuple(
                    "T",
                    (0.75 + 0.2 * rng.random(), 0.9 + 0.05 * rng.random()),
                )
            )
        else:
            out.append(
                RawTuple("T", (0.5 * rng.random(), 0.05 * rng.random()))
            )
    return out


def test_prefilter_prunes_late_after_distribution_shift():
    raws = _two_phase_raws()
    reference = _reference(raws, 7)
    result = run_topology(
        build_spo_sharded_topology(
            timed(raws, rate=RATE), q3(), WINDOW, NUM_SHARDS, batch_size=7
        )
    )
    reduce_sharded_result(result)
    assert result.result_fingerprint() == reference
    pf = result.pes_of("router")[0].operator.prefilter
    # Under the old monotone widening, shard 0's range would still span
    # phase A (hi ~= 1.0) and the hot probes could never be skipped.
    assert pf.hi[0] < 0.1
    assert pf.skipped >= 40


def _nan_raws():
    out = []
    for i, raw in enumerate(self_stream(1200, correlation=0.2, seed=21)):
        if i % 17 == 0:
            out.append(RawTuple(raw.stream, (raw.values[0], math.nan)))
        else:
            out.append(raw)
    return out


def test_nan_filter_values_keep_the_anchor_invariant():
    """A NaN in the filter field matches nothing, but its tuple must
    still surface as exactly one (empty) result — and NaNs flowing
    through the tracker/prefilter must not disturb parity."""
    raws = _nan_raws()
    reference = _reference(raws, 7)
    result = run_topology(
        build_spo_sharded_topology(
            timed(raws, rate=RATE),
            q3(),
            WINDOW,
            NUM_SHARDS,
            batch_size=7,
            balance=BalanceConfig(
                imbalance_factor=1.2, min_live_tuples=200
            ),
        )
    )
    reduce_sharded_result(result)
    assert result.result_fingerprint() == reference
    results = {
        r.payload["tid"]: r.payload["matches"]
        for r in result.records
        if r.name == "result"
    }
    # One record per stamped tuple (the anchor shard always reports),
    # and NaN probes report empty match sets.
    assert sorted(results) == list(range(len(raws)))
    for tid in range(0, len(raws), 17):
        assert results[tid] == []
