"""Unit tests for adaptive repartitioning: the load tracker's decision
rules and the coordinator's state re-slicing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import JoinType, Op, QuerySpec
from repro.core.checkpoint import batch_from_state, batch_state
from repro.core.merge import build_merge_batch_from_runs
from repro.dspe.partitioning import RangeShards
from repro.indexes.sorted_run import SortedRun
from repro.parallel import BalanceConfig, ShardLoadTracker, reslice_exports


def q3():
    return QuerySpec.two_inequalities("Q3", JoinType.SELF, Op.GT, Op.LT)


def make_tracker(**overrides):
    config = dict(
        imbalance_factor=1.3,
        min_live_tuples=100,
        sample_cap=512,
        cooldown_boundaries=2,
        snap_tolerance=0.05,
    )
    config.update(overrides)
    return ShardLoadTracker(
        RangeShards.uniform(4), max_batches=4, config=BalanceConfig(**config)
    )


class TestBalanceConfig:
    def test_rejects_non_amplifying_factor(self):
        with pytest.raises(ValueError):
            BalanceConfig(imbalance_factor=1.0)


class TestShardLoadTracker:
    def test_balanced_load_never_triggers(self):
        tracker = make_tracker()
        rng = np.random.default_rng(0)
        for boundary in range(6):
            tracker.note_stores(rng.uniform(0.0, 1.0, 500))
            assert tracker.on_boundary(boundary) is None

    def test_skew_triggers_with_valid_cuts(self):
        tracker = make_tracker()
        rng = np.random.default_rng(1)
        decision = None
        for boundary in range(4):
            hot = rng.uniform(0.8, 0.9, 400)
            cold = rng.uniform(0.0, 1.0, 100)
            tracker.note_stores(np.concatenate([hot, cold]))
            decision = tracker.on_boundary(boundary)
            if decision is not None:
                break
        assert decision is not None
        assert decision.affected
        assert len(decision.new_cuts) == 3
        assert all(
            b > a for a, b in zip(decision.new_cuts, decision.new_cuts[1:])
        )
        # The hottest shard under the old uniform cuts is shard 3
        # ([0.75, inf)); the new cuts must move mass off it.
        assert decision.estimate[3] == max(decision.estimate)

    def test_warmup_floor_blocks_early_decisions(self):
        tracker = make_tracker(min_live_tuples=10_000)
        for boundary in range(5):
            tracker.note_stores(np.full(500, 0.85))
            assert tracker.on_boundary(boundary) is None

    def test_cooldown_spaces_decisions(self):
        tracker = make_tracker(cooldown_boundaries=3)
        rng = np.random.default_rng(2)

        def feed(boundary):
            tracker.note_stores(
                np.concatenate(
                    [rng.uniform(0.8, 0.9, 400), rng.uniform(0.0, 1.0, 100)]
                )
            )
            return tracker.on_boundary(boundary)

        boundary = 0
        first = None
        while first is None:
            first = feed(boundary)
            boundary += 1
        tracker.apply(tracker.shards.with_cuts(first.new_cuts))
        # The next `cooldown_boundaries` boundaries stay quiet no matter
        # how skewed the load still looks.
        for __ in range(3):
            assert feed(boundary) is None
            boundary += 1

    def test_snap_suppresses_near_noop_migrations(self):
        # A 55/45 tilt across the old cut 0.5 trips a tight imbalance
        # factor, but the weighted median (~0.455) is within the snap
        # tolerance of the old cut — the candidate snaps back and no
        # migration is decided.
        tilt = np.concatenate(
            [
                np.linspace(0.0, 0.5, 550, endpoint=False),
                np.linspace(0.5, 1.0, 450, endpoint=False),
            ]
        )

        def decide(snap_tolerance):
            tracker = ShardLoadTracker(
                RangeShards.uniform(2),
                max_batches=4,
                config=BalanceConfig(
                    imbalance_factor=1.05,
                    min_live_tuples=100,
                    snap_tolerance=snap_tolerance,
                ),
            )
            tracker.note_stores(tilt)
            return tracker.on_boundary(0)

        assert decide(0.1) is None
        # Same load with a tiny tolerance does migrate — proving the
        # imbalance trigger fired and only the snap held it back.
        decision = decide(1e-4)
        assert decision is not None
        assert decision.new_cuts[0] < 0.5

    def test_window_expiry_forgets_old_intervals(self):
        tracker = make_tracker()
        # One heavily skewed interval followed by max_batches balanced
        # ones: the skewed interval must age out of the estimate.
        tracker.note_stores(np.full(5000, 0.9))
        tracker.on_boundary(0)
        rng = np.random.default_rng(4)
        for boundary in range(1, 5):
            tracker.note_stores(rng.uniform(0.0, 1.0, 500))
            tracker.on_boundary(boundary)
        estimate, total = tracker._estimate()
        assert total == 4 * 500
        assert estimate.max() < 1.3 * total / 4

    def test_nan_samples_are_ignored(self):
        tracker = make_tracker()
        values = np.full(600, 0.9)
        values[::3] = np.nan
        tracker.note_stores(values)
        decision = tracker.on_boundary(0)
        if decision is not None:
            assert not any(np.isnan(c) for c in decision.new_cuts)
        for __, __, sample in tracker._intervals:
            assert not np.isnan(sample).any()

    def test_decisions_are_chunking_invariant(self):
        """The same interval totals yield the same decision no matter
        how the router chunked them into micro-batches."""
        rng = np.random.default_rng(5)
        stores = np.concatenate(
            [rng.uniform(0.8, 0.9, 400), rng.uniform(0.0, 1.0, 100)]
        )

        def drive(chunk):
            tracker = make_tracker()
            out = []
            for boundary in range(4):
                for i in range(0, len(stores), chunk):
                    tracker.note_stores(stores[i : i + chunk])
                decision = tracker.on_boundary(boundary)
                out.append(
                    None if decision is None else decision.new_cuts
                )
                if decision is not None:
                    tracker.apply(
                        tracker.shards.with_cuts(decision.new_cuts)
                    )
            return out

        assert drive(1) == drive(7) == drive(500)


def _export(shard, affected, new_cuts, batches):
    return {
        "epoch": 1,
        "shard": shard,
        "affected": list(affected),
        "expected": len(affected),
        "new_cuts": list(new_cuts),
        "batches": batches,
    }


def _batch(batch_id, rows):
    """Build a batch state from (partition_value, filter_value, tid)."""
    rows = sorted(rows)
    run0 = SortedRun(
        [v for v, __, __ in rows], [t for __, __, t in rows]
    )
    by_filter = sorted((f, t, v) for v, f, t in rows)
    run1 = SortedRun(
        [f for f, __, __ in by_filter], [t for __, t, __ in by_filter]
    )
    return batch_state(
        build_merge_batch_from_runs(batch_id, q3(), [run0, run1], None)
    )


class TestResliceExports:
    def test_reslice_rehomes_rows_by_new_cuts(self):
        # Two affected shards under old cut 0.5; the new cut 0.7 moves
        # [0.5, 0.7) rows from shard 1 into shard 0.
        exports = [
            _export(0, [0, 1], [0.7], [_batch(3, [(0.1, 0.9, 1), (0.4, 0.2, 2)])]),
            _export(1, [0, 1], [0.7], [_batch(3, [(0.55, 0.5, 3), (0.9, 0.1, 4)])]),
        ]
        assignments = reslice_exports(exports)
        shards = RangeShards([0.7])
        assert sorted(assignments) == [0, 1]
        shard0 = batch_from_state(assignments[0][0])
        shard1 = batch_from_state(assignments[1][0])
        assert shard0.left.runs[0].tids == [1, 2, 3]
        assert shard1.left.runs[0].tids == [4]
        for shard, batch in ((0, shard0), (1, shard1)):
            run0 = batch.left.runs[0]
            assert (shards.owner_of(run0.values) == shard).all()
            # Run invariants survive the merge: sorted by value, and the
            # filter run holds exactly the same tid set.
            assert list(run0.values) == sorted(run0.values)
            assert sorted(batch.left.runs[1].tids) == sorted(run0.tids)

    def test_reslice_preserves_intervals_separately(self):
        exports = [
            _export(0, [0, 1], [0.3], [_batch(1, [(0.1, 0.5, 1)])]),
            _export(
                1,
                [0, 1],
                [0.3],
                [_batch(1, [(0.6, 0.5, 2)]), _batch(2, [(0.2, 0.5, 3)])],
            ),
        ]
        assignments = reslice_exports(exports)
        assert [s["batch_id"] for s in assignments[0]] == [1, 2]
        # Interval 1's surviving shard-1 row stays in interval 1.
        assert [s["batch_id"] for s in assignments[1]] == [1]

    def test_movement_outside_affected_set_raises(self):
        # Row at 0.9 belongs to shard 2 under cuts [0.3, 0.7], but only
        # shards {0, 1} claim to be affected — the closure proof is
        # violated and the reslice must fail loudly.
        exports = [
            _export(0, [0, 1], [0.3, 0.7], [_batch(1, [(0.9, 0.5, 1)])]),
            _export(1, [0, 1], [0.3, 0.7], []),
        ]
        with pytest.raises(RuntimeError):
            reslice_exports(exports)

    def test_empty_exports(self):
        assert reslice_exports([]) == {}
