"""Pragma parsing and baseline matching units."""

from __future__ import annotations

from repro.analysis import Finding
from repro.analysis.baseline import Baseline
from repro.analysis.pragmas import parse_pragmas


def test_single_allowance():
    index = parse_pragmas("x = 1  # repro: allow-wallclock\n")
    assert index.allows(1, "wallclock")
    assert not index.allows(1, "set-iteration")
    assert not index.allows(2, "wallclock")


def test_comma_separated_allowances():
    index = parse_pragmas(
        "x = 1  # repro: allow-wallclock, allow-set-iteration\n"
    )
    assert index.allows(1, "wallclock")
    assert index.allows(1, "set-iteration")


def test_allow_all():
    index = parse_pragmas("x = 1  # repro: allow-all\n")
    assert index.allows(1, "wallclock")
    assert index.allows(1, "numpy-scalar")


def test_pragma_in_string_is_ignored():
    index = parse_pragmas('x = "# repro: allow-wallclock"\n')
    assert not index.allows(1, "wallclock")


def test_non_pragma_comments_ignored():
    index = parse_pragmas("x = 1  # a normal comment\n")
    assert index.lines == {}


def _finding(identity_suffix: str = "a", line: int = 1) -> Finding:
    return Finding(
        rule="REPRO001",
        path="pkg/mod.py",
        line=line,
        col=1,
        message="m",
        scope="f",
        symbol=identity_suffix,
    )


def test_baseline_absorbs_exact_count():
    findings = [_finding("a", 1), _finding("a", 9)]
    baseline = Baseline.from_findings(findings)
    new, baselined = baseline.partition(findings)
    assert new == [] and len(baselined) == 2
    # A third occurrence of the same identity is new.
    new, baselined = baseline.partition(findings + [_finding("a", 20)])
    assert len(new) == 1 and len(baselined) == 2


def test_baseline_identity_ignores_lines():
    baseline = Baseline.from_findings([_finding("a", 1)])
    new, baselined = baseline.partition([_finding("a", 500)])
    assert new == [] and len(baselined) == 1


def test_baseline_save_load_roundtrip(tmp_path):
    baseline = Baseline.from_findings([_finding("a"), _finding("b")])
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.counts == baseline.counts


def test_stale_identities():
    baseline = Baseline.from_findings([_finding("a"), _finding("b")])
    stale = baseline.stale_identities([_finding("a")])
    assert stale == [_finding("b").identity]
