"""CLI behavior: exit codes, JSON output, baseline workflow, selection."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main

CLEAN = "def add(a, b):\n    return a + b\n"
VIOLATION = "import time\n\ndef now():\n    return time.time()\n"
PRAGMAED = (
    "import time\n\ndef now():\n"
    "    return time.time()  # repro: allow-wallclock\n"
)


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "clean.py").write_text(CLEAN)
    (tmp_path / "dirty.py").write_text(VIOLATION)
    return tmp_path


def test_exit_zero_on_clean_file(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    assert main([str(path), "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert "0 new finding(s)" in out


def test_exit_nonzero_on_violation(tree, capsys):
    assert main([str(tree), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "REPRO001" in out and "dirty.py" in out


def test_pragma_suppresses(tmp_path):
    path = tmp_path / "ok.py"
    path.write_text(PRAGMAED)
    assert main([str(path), "--no-baseline"]) == 0


def test_json_format(tree, capsys):
    code = main([str(tree), "--format", "json", "--no-baseline"])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert report["files_checked"] == 2
    rules = {f["rule"] for f in report["findings"]}
    assert rules == {"REPRO001"}
    finding = report["findings"][0]
    assert {"rule", "path", "line", "col", "message", "scope", "identity"} <= set(
        finding
    )


def test_json_out_file(tree, tmp_path, capsys):
    out_file = tmp_path / "report.json"
    main([str(tree), "--no-baseline", "--json-out", str(out_file)])
    report = json.loads(out_file.read_text())
    assert report["findings"]


def test_baseline_roundtrip(tree, capsys):
    baseline = tree / "baseline.json"
    # Accept current findings.
    assert main([str(tree), "--write-baseline", "--baseline", str(baseline)]) == 0
    # Gate passes against them.
    assert main([str(tree), "--baseline", str(baseline)]) == 0
    # A new violation still fails.
    (tree / "dirty2.py").write_text(VIOLATION)
    assert main([str(tree), "--baseline", str(baseline)]) == 1


def test_baseline_reports_stale_entries(tree, capsys):
    baseline = tree / "baseline.json"
    main([str(tree), "--write-baseline", "--baseline", str(baseline)])
    (tree / "dirty.py").write_text(CLEAN)  # fix the violation
    assert main([str(tree), "--baseline", str(baseline)]) == 0
    assert "stale baseline" in capsys.readouterr().out


def test_second_violation_of_same_identity_fails(tree):
    baseline = tree / "baseline.json"
    main([str(tree), "--write-baseline", "--baseline", str(baseline)])
    # Same file, same scope, one *more* call of the same shape.
    (tree / "dirty.py").write_text(
        "import time\n\ndef now():\n"
        "    return time.time() + time.time()\n"
    )
    assert main([str(tree), "--baseline", str(baseline)]) == 1


def test_select_and_ignore(tree):
    assert main([str(tree), "--no-baseline", "--select", "REPRO004"]) == 0
    assert main([str(tree), "--no-baseline", "--ignore", "REPRO001"]) == 0
    assert main([str(tree), "--no-baseline", "--select", "REPRO001"]) == 1


def test_unknown_select_is_usage_error(tree):
    with pytest.raises(SystemExit) as excinfo:
        main([str(tree), "--select", "REPRO999"])
    assert excinfo.value.code == 2


def test_parse_error_fails_the_gate(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    assert main([str(path), "--no-baseline"]) == 1
    assert "PARSE ERROR" in capsys.readouterr().out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REPRO001", "REPRO006"):
        assert rule_id in out


def test_repo_tree_is_clean_against_committed_baseline():
    """The acceptance gate: HEAD analyzes clean (pragmas + baseline)."""
    import pathlib

    repo = pathlib.Path(__file__).resolve().parents[2]
    target = repo / "src" / "repro"
    baseline = repo / ".repro-analysis-baseline.json"
    assert main([str(target), "--baseline", str(baseline), "--quiet"]) == 0
