"""Fixture-based positive/negative tests for every REPRO rule.

Each rule must (a) fire on its positive fixture — so deleting or
breaking the rule's implementation fails here — and (b) stay silent on
its negative fixture — so the rule does not flag the sanctioned idioms
it is steering people toward.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_source, all_rules
from repro.analysis.rules import rule_by_id

FIXTURES = Path(__file__).parent / "fixtures"

RULE_IDS = [
    "REPRO001",
    "REPRO002",
    "REPRO003",
    "REPRO004",
    "REPRO005",
    "REPRO006",
]

#: Minimum flagged sites in each positive fixture — every ``# flagged``
#: comment in the fixture should produce a finding.
EXPECTED_MINIMUM = {
    "REPRO001": 6,
    "REPRO002": 14,
    "REPRO003": 6,
    "REPRO004": 3,
    "REPRO005": 6,
    "REPRO006": 4,
}


def _run(rule_id: str, fixture: str):
    source = (FIXTURES / fixture).read_text()
    findings = analyze_source(source, path=fixture, rules=[rule_by_id(rule_id)])
    return [f for f in findings if f.rule == rule_id]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_positive_fixture_fires(rule_id):
    findings = _run(rule_id, f"{rule_id.lower()}_positive.py")
    assert len(findings) >= EXPECTED_MINIMUM[rule_id], [
        f.render() for f in findings
    ]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_negative_fixture_is_clean(rule_id):
    findings = _run(rule_id, f"{rule_id.lower()}_negative.py")
    assert findings == [], [f.render() for f in findings]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_flagged_comments_match_findings(rule_id):
    """Every `# flagged` marker line in a positive fixture is reported."""
    fixture = FIXTURES / f"{rule_id.lower()}_positive.py"
    source = fixture.read_text()
    marked = {
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if "# flagged" in line
    }
    findings = _run(rule_id, fixture.name)
    found_lines = {f.line for f in findings}
    missed = marked - found_lines
    assert not missed, f"marked lines with no finding: {sorted(missed)}"


def test_registry_is_complete():
    assert [rule.id for rule in all_rules()] == RULE_IDS


def test_rules_have_distinct_pragma_names():
    names = [rule.name for rule in all_rules()]
    assert len(names) == len(set(names))


def test_finding_identity_is_line_independent():
    source = (FIXTURES / "repro001_positive.py").read_text()
    shifted = "\n\n\n" + source
    original = analyze_source(source, rules=[rule_by_id("REPRO001")])
    moved = analyze_source(shifted, rules=[rule_by_id("REPRO001")])
    assert [f.identity for f in original] == [f.identity for f in moved]
    assert [f.line + 3 for f in original] == [f.line for f in moved]
