"""REPRO005 positive fixture: numpy scalars leaking into repr paths."""
import json

import numpy as np


def fingerprint(arena):
    values = arena.values_array()
    return f"{values[0]}:{values[-1]}"  # flagged: np scalar in f-string


def render(columns):
    arr = np.asarray(columns)
    return str(arr[3])  # flagged: str() of a numpy scalar


def export(arena):
    tids = arena.tids_array()
    return json.dumps({"first": tids[0]})  # flagged: json.dumps rejects it


def snapshot_state(self):
    col = np.zeros(4)
    return {"head": col[0]}  # flagged: serializer payload


def emit(ctx, arena, i):
    times = arena.event_time_column()
    ctx.record("result", {"event_time": times[i]})  # flagged: emission


def reduced(values):
    arr = np.asarray(values)
    return f"max={arr.max()}"  # flagged: reducer returns a numpy scalar
