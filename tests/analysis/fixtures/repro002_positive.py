"""REPRO002 positive fixture: unseeded randomness that must be flagged."""
import os
import random
import uuid

import numpy as np


def jitter() -> float:
    return random.random()  # flagged: module-level global RNG


def pick(items):
    random.shuffle(items)  # flagged
    return random.choice(items)  # flagged


def make_generators():
    a = random.Random()  # flagged: constructed without a seed
    b = np.random.default_rng()  # flagged: no seed
    c = np.random.rand(4)  # flagged: legacy global numpy RNG
    d = random.SystemRandom()  # flagged: inherently unseedable
    e = os.urandom(8)  # flagged
    f = uuid.uuid4()  # flagged
    return a, b, c, d, e, f
