"""REPRO002 positive fixture: unseeded randomness that must be flagged."""
import os
import random
import uuid

import numpy as np


def jitter() -> float:
    return random.random()  # flagged: module-level global RNG


def pick(items):
    random.shuffle(items)  # flagged
    return random.choice(items)  # flagged


def make_generators():
    a = random.Random()  # flagged: constructed without a seed
    b = np.random.default_rng()  # flagged: no seed
    c = np.random.rand(4)  # flagged: legacy global numpy RNG
    d = random.SystemRandom()  # flagged: inherently unseedable
    e = os.urandom(8)  # flagged
    f = uuid.uuid4()  # flagged
    return a, b, c, d, e, f


def worker_entry(worker_index, in_q, out_q):
    # Multiprocessing worker entrypoints: pid/wall-clock-derived seeds
    # differ per fork and per run, so they are as bad as no seed.
    import time

    g = random.Random(os.getpid())  # flagged: pid-derived seed
    h = np.random.default_rng(int(time.time()))  # flagged: wall-clock seed
    i = random.Random(worker_index ^ time.time_ns())  # flagged: wall-clock seed
    return g, h, i


def respawn_backoff(worker_index):
    # Supervisor respawn jitter: interpreter-identity seeds make every
    # chaos run back off differently, so they are as bad as no seed.
    j = random.Random(hash(("supervisor", worker_index)))  # flagged: hash-salted seed
    k = np.random.default_rng(id(object) & 0xFFFF)  # flagged: address-derived seed
    return j, k
