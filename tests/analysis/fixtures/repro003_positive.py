"""REPRO003 positive fixture: ordered consumption of unordered sets."""


def emit_matches(record, tids):
    matched = set(tids)
    for tid in matched:  # flagged: emission order from set order
        record.append(tid)
    return record


def fingerprint_parts(values):
    parts = [str(v) for v in {v * 2 for v in values}]  # flagged
    return "|".join(parts)


def join_directly(names):
    return ",".join(set(names))  # flagged: str.join over a set


def listify(tids):
    return list(frozenset(tids))  # flagged: list() over a set


def unpack(tids):
    seen = set(tids)
    return [*seen]  # flagged: unpacking a set


class Window:
    def __init__(self):
        self._awaiting = set()

    def drain(self, out):
        for item in self._awaiting:  # flagged: attr set from __init__
            out.append(item)
        self._awaiting.clear()
