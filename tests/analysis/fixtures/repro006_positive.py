"""REPRO006 positive fixture: direct observer sinks in operator code."""


class LeakyOperator:
    """Charges its instrumentation cost to the service window."""

    def __init__(self, obs):
        self.obs = obs

    def process(self, payload, ctx):
        # Direct sink: instrumentation cost lands in charged service time.
        self.obs.on_event("probe", 0.0, "joiner", None)  # flagged
        result = payload * 2
        self.obs.on_operator_cost("joiner", 0.0, "probe", 0.01, None)  # flagged
        return result


def trace_directly(message, engine):
    message.trace = engine.obs.tracer.maybe_start("router")  # flagged
    return message


def serve_hook(telemetry, pe):
    telemetry.on_serve(pe.name, 0.0, 0.01)  # flagged
