"""REPRO004 positive fixture: checkpointable classes with state gaps."""


class LeakyJoiner:
    """Grows ``_tuples_seen`` but never serializes it (the PR 2 bug)."""

    checkpointable = True

    def __init__(self, window):
        self.window = window
        self._tuples_seen = 0
        self._slides = []

    def process(self, t):
        self._tuples_seen += 1  # mutated after __init__
        self._slides.append(t)

    def snapshot_state(self):
        # _tuples_seen is missing: restore resumes mid-window at zero.
        return {"slides": list(self._slides)}

    def restore_state(self, state):
        self._slides = list(state["slides"])


class HalfRestored:
    """Serializes a counter on snapshot but forgets it on restore."""

    checkpointable = True

    def __init__(self):
        self._count = 0  # flagged: finding anchors at the init assignment

    def bump(self):
        self._count += 1

    def snapshot_state(self):
        return {"count": self._count}

    def restore_state(self, state):
        pass  # _count never restored


class DeclaredButUnimplemented:
    """Marked checkpointable without either serialization method."""

    checkpointable = True

    def __init__(self):
        self._log = []

    def record(self, entry):
        self._log.append(entry)
