"""REPRO002 negative fixture: config-threaded seeded randomness only."""
import random

import numpy as np


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def make_np_rng(seed: int):
    return np.random.default_rng(seed)


def draw(rng: random.Random, items):
    # Instance methods on a threaded generator are the sanctioned idiom.
    rng.shuffle(items)
    return rng.choice(items)


def poisson(rng: random.Random, lam: float) -> int:
    return int(rng.random() * lam)


def spawn_seed(root_seed: int, *path) -> int:
    import hashlib

    digest = hashlib.sha256(repr((root_seed, path)).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def worker_entry(worker_index: int, root_seed: int):
    # The sanctioned worker idiom: spawn the per-worker seed from the
    # run's root seed, so every fork replays identically.
    rng = random.Random(spawn_seed(root_seed, "worker", worker_index))
    return rng.random()


def respawn_backoff(worker_index: int, root_seed: int) -> float:
    # Supervisor respawn jitter: derives from the run's root seed, so
    # two chaos runs with the same seed back off identically.
    rng = random.Random(spawn_seed(root_seed, "supervisor", worker_index))
    return rng.random()
