"""REPRO002 negative fixture: config-threaded seeded randomness only."""
import random

import numpy as np


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def make_np_rng(seed: int):
    return np.random.default_rng(seed)


def draw(rng: random.Random, items):
    # Instance methods on a threaded generator are the sanctioned idiom.
    rng.shuffle(items)
    return rng.choice(items)


def poisson(rng: random.Random, lam: float) -> int:
    return int(rng.random() * lam)
