"""REPRO001 negative fixture: no unflagged wall-clock reads.

The deliberate measurement site carries the pragma; everything else
threads simulated time through explicitly.
"""
import time


def charge_service(now: float, cost: float) -> float:
    # Simulated time arrives as data, never from the host clock.
    return now + cost


def measured_merge(observing: bool) -> float:
    t0 = time.perf_counter() if observing else 0.0  # repro: allow-wallclock
    spent = time.perf_counter() - t0  # repro: allow-wallclock
    return spent


def sleepless(duration: float) -> None:
    # time.sleep is not a clock *read*; scheduling is the engine's job.
    time.sleep(duration)
