"""REPRO001 positive fixture: wall-clock reads that must be flagged."""
import time
from time import perf_counter as pc
from datetime import datetime
import datetime as dt


def charge_service():
    start = time.time()  # flagged: absolute wall clock
    t0 = time.perf_counter()  # flagged: duration clock in engine path
    t1 = pc()  # flagged: aliased from-import
    return start + t0 + t1


def stamp_result(record):
    record["at"] = datetime.now()  # flagged
    record["day"] = dt.date.today()  # flagged
    record["mono"] = time.monotonic()  # flagged
    return record
