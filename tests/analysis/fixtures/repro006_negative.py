"""REPRO006 negative fixture: sanctioned observability patterns."""
import time


class CleanOperator:
    """Routes instrumentation through the context's isolated API."""

    def process(self, payload, ctx):
        if ctx.observing:
            ctx.observe_event("probe", stage="joiner")
        result = payload * 2
        ctx.observe_cost("probe", 0.01)
        return result


class Context:
    """The isolation pattern itself: sink calls bracket _obs_overhead."""

    def __init__(self, engine):
        self._engine = engine
        self._obs_overhead = 0.0

    def observe_event(self, kind, **fields):
        obs = self._engine.obs
        if obs is None:
            return
        t0 = time.perf_counter()  # repro: allow-wallclock
        obs.on_event(kind, 0.0, "pe", fields or None)
        self._obs_overhead += time.perf_counter() - t0  # repro: allow-wallclock


class Engine:
    """Scheduler-side emission happens outside any charged window."""

    def __init__(self, obs):
        self.obs = obs

    def run(self):
        if self.obs is not None:
            self.obs.on_event("run_start", 0.0, None, None)
