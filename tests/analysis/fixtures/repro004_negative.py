"""REPRO004 negative fixture: complete checkpoint serialization."""


class CompleteJoiner:
    checkpointable = True

    def __init__(self, window):
        self.window = window  # config: never mutated, needs no key
        self._tuples_seen = 0
        self._slides = []
        self._pe_index = 0
        # Derived cache, rebuilt lazily after restore; deliberate gap.
        self._probe_cache = {}  # repro: allow-checkpoint-gap

    def setup(self, ctx):
        # Re-runs on restart: assignments here need no serialization.
        self._pe_index = ctx.pe_index

    def process(self, t):
        self._tuples_seen += 1
        self._slides.append(t)
        self._probe_cache.clear()

    def snapshot_state(self):
        return {
            "tuples_seen": self._tuples_seen,
            "slides": list(self._slides),
        }

    def restore_state(self, state):
        self._tuples_seen = state["tuples_seen"]
        self._slides = list(state["slides"])


class DelegatingJoiner:
    """Serialization delegated to the wrapped operator's functions."""

    checkpointable = True

    def __init__(self, join):
        self.join = join

    def process(self, t):
        self.join.insert(t)

    def snapshot_state(self):
        return _checkpoint(self.join)

    def restore_state(self, state):
        self.join = _restore(state)


def _checkpoint(join):
    return {"join": join}


def _restore(state):
    return state["join"]


class NotCheckpointable:
    """No checkpoint contract: mutation without serialization is fine."""

    def __init__(self):
        self._count = 0

    def bump(self):
        self._count += 1
