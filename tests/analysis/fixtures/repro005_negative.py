"""REPRO005 negative fixture: numpy values converted before the sink."""
import json

import numpy as np


def fingerprint(arena):
    values = arena.values_array()
    return f"{float(values[0])}:{float(values[-1])}"


def render(columns):
    arr = np.asarray(columns)
    return str(arr[3].item())


def export(arena):
    tids = arena.tids_array()
    return json.dumps({"first": int(tids[0]), "all": tids.tolist()})


def snapshot_state(self):
    col = np.zeros(4)
    return {"head": float(col[0]), "rest": col[1:].tolist()}


def emit(ctx, arena, i):
    times = arena.event_time_column()
    ctx.record("result", {"event_time": float(times[i])})


def plain_lists(record):
    # Plain python containers pass through untouched.
    values = [1.0, 2.0]
    return f"{values[0]}" + json.dumps({"v": values[1]})
