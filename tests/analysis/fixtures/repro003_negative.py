"""REPRO003 negative fixture: sets used only order-insensitively."""


def emit_matches(record, tids):
    matched = set(tids)
    for tid in sorted(matched):  # sorted boundary: deterministic
        record.append(tid)
    return record


def membership(tids, probe):
    seen = set(tids)
    return probe in seen and len(seen) > 0


def algebra(a_tids, b_tids):
    combined = set(a_tids) & set(b_tids)
    return sorted(combined or ())


def aggregates(values):
    distinct = {v * 2 for v in values}
    return min(distinct), max(distinct), sum(distinct)


def over_dict(mapping):
    # Dict iteration is insertion-ordered and deterministic.
    return [key for key in mapping]


def deliberate(names):
    return list(set(names))  # repro: allow-set-iteration


class Window:
    def __init__(self):
        self._awaiting = set()

    def drain(self, out):
        for item in sorted(self._awaiting):
            out.append(item)
        self._awaiting.clear()
