"""CSS immutable batches: probe parity with PO-Join, both intersections."""

import random

import pytest

from repro.core import JoinType, Op, QuerySpec, build_merge_batch, make_tuple
from repro.core.pojoin import POJoinBatch
from repro.indexes import BPlusTree
from repro.joins import CSSImmutableBatch

ALL_OPS = [Op.LT, Op.GT, Op.LE, Op.GE, Op.EQ, Op.NE]


def tree_from(tuples, field):
    tree = BPlusTree(order=8)
    for t in tuples:
        tree.insert(t.values[field], t.tid)
    return tree


def rand_tuples(stream, n, start, seed, hi=12):
    rng = random.Random(seed)
    return [
        make_tuple(start + i, stream, rng.randint(0, hi), rng.randint(0, hi))
        for i in range(n)
    ]


def batches_for(query, left, right=None, **kwargs):
    lt = [tree_from(left, p.left_field) for p in query.predicates]
    rt = (
        [tree_from(right, p.right_field) for p in query.predicates]
        if right is not None
        else None
    )
    merge = build_merge_batch(0, query, lt, rt)
    po = POJoinBatch(query, merge)
    css = CSSImmutableBatch(query, merge, **kwargs)
    return po, css


class TestParityWithPOJoin:
    @pytest.mark.parametrize("intersect", ["bit", "hash"])
    @pytest.mark.parametrize("op_pair", [(Op.GT, Op.LT), (Op.LE, Op.GE), (Op.NE, Op.EQ)])
    def test_self_join_parity(self, intersect, op_pair):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, *op_pair)
        stored = rand_tuples("T", 30, 0, seed=70)
        po, css = batches_for(q, stored, intersect=intersect)
        for probe in rand_tuples("T", 15, 1000, seed=71):
            assert sorted(css.probe(probe, True)) == sorted(po.probe(probe, True))

    @pytest.mark.parametrize("probe_is_left", [True, False])
    def test_cross_join_parity(self, q1_query, probe_is_left):
        left = rand_tuples("R", 25, 0, seed=72)
        right = rand_tuples("S", 25, 100, seed=73)
        po, css = batches_for(q1_query, left, right)
        stream = "R" if probe_is_left else "S"
        for probe in rand_tuples(stream, 15, 1000, seed=74):
            assert sorted(css.probe(probe, probe_is_left)) == sorted(
                po.probe(probe, probe_is_left)
            )

    def test_band_parity(self, q2_query):
        rng = random.Random(75)
        stored = [
            make_tuple(i, "T", rng.uniform(0, 10), rng.uniform(0, 10))
            for i in range(25)
        ]
        po, css = batches_for(q2_query, stored)
        probe = make_tuple(999, "T", 5.0, 5.0)
        assert sorted(css.probe(probe, True)) == sorted(po.probe(probe, True))


class TestBehaviour:
    def test_empty_batch(self, q3_query):
        __, css = batches_for(q3_query, [])
        assert css.probe(make_tuple(1, "T", 5, 5), True) == []

    def test_invalid_intersect_rejected(self, q3_query):
        lt = [tree_from([], p.left_field) for p in q3_query.predicates]
        merge = build_merge_batch(0, q3_query, lt)
        with pytest.raises(ValueError):
            CSSImmutableBatch(q3_query, merge, intersect="bloom")

    def test_memory_and_len(self, q1_query):
        left = rand_tuples("R", 20, 0, seed=76)
        right = rand_tuples("S", 10, 100, seed=77)
        __, css = batches_for(q1_query, left, right)
        assert len(css) == 30
        assert css.memory_bits() > 0

    def test_early_exit_on_empty_first_predicate(self, q3_query):
        stored = [make_tuple(i, "T", 5, 5) for i in range(10)]
        __, css = batches_for(q3_query, stored)
        # Probe whose first predicate (GT) matches nothing.
        probe = make_tuple(999, "T", 0, 0)
        assert css.probe(probe, True) == []
