"""Unit tests for the distributed SPO operators' internals."""

import pytest

from repro.core import JoinType, Op, QuerySpec, WindowSpec, make_tuple
from repro.core.window import MergePolicy
from repro.joins.operators import SPOConfig, _MergeClock


class TestMergeClock:
    def test_count_based_epochs(self):
        clock = _MergeClock(MergePolicy(WindowSpec.count(100, 20)))
        fired = []
        for i in range(60):
            t = make_tuple(i, "T", 0.0, 0.0)
            fired.append(clock.advance(t))
        assert sum(fired) == 3
        assert clock.epoch == 3
        # Boundaries land exactly every delta tuples.
        assert [i for i, f in enumerate(fired) if f] == [19, 39, 59]

    def test_sub_interval_epochs(self):
        clock = _MergeClock(MergePolicy(WindowSpec.count(100, 20), sub_intervals=4))
        for i in range(20):
            clock.advance(make_tuple(i, "T", 0.0, 0.0))
        assert clock.epoch == 4  # delta = 5

    def test_time_based_epochs(self):
        clock = _MergeClock(MergePolicy(WindowSpec.time(1.0, 0.2)))
        fired = []
        for i in range(100):
            t = make_tuple(i, "T", 0.0, 0.0, event_time=i * 0.01)
            fired.append(clock.advance(t))
        # First boundary at first_event + 0.2, then every 0.2s.
        assert sum(fired) == 4
        assert clock.epoch == 4

    def test_identical_streams_agree(self):
        """Two clocks fed the same tuples fire at identical points —
        the property the distributed operators rely on."""
        policy = MergePolicy(WindowSpec.count(50, 10))
        a, b = _MergeClock(policy), _MergeClock(policy)
        for i in range(200):
            t = make_tuple(i, "T", 0.0, 0.0, event_time=i * 0.003)
            assert a.advance(t) == b.advance(t)
        assert a.epoch == b.epoch


class TestSPOConfig:
    def test_defaults(self, q1_query):
        config = SPOConfig(q1_query, WindowSpec.count(100, 20))
        assert config.two_stream
        assert config.global_max_batches == 4
        assert config.state_strategy == "rr"

    def test_probe_side_routing(self, q1_query, q3_query):
        config = SPOConfig(q1_query, WindowSpec.count(100, 20))
        assert config.probe_is_left(make_tuple(0, "R", 1, 2))
        assert not config.probe_is_left(make_tuple(0, "S", 1, 2))
        self_config = SPOConfig(q3_query, WindowSpec.count(100, 20))
        assert self_config.probe_is_left(make_tuple(0, "anything", 1, 2))

    def test_invalid_strategy_rejected(self, q1_query):
        with pytest.raises(ValueError):
            SPOConfig(q1_query, WindowSpec.count(100, 20), state_strategy="gossip")

    def test_batch_factory_default_builds_vector_pojoin(self, q3_query):
        from repro.core import build_merge_batch
        from repro.core.immutable import ImmutableBatch
        from repro.core.pojoin_numpy import VectorPOJoinBatch
        from repro.indexes import BPlusTree

        config = SPOConfig(q3_query, WindowSpec.count(100, 20))
        trees = [BPlusTree() for __ in q3_query.predicates]
        merge = build_merge_batch(0, q3_query, trees)
        batch = config.batch_factory(q3_query, merge)
        assert isinstance(batch, VectorPOJoinBatch)
        assert isinstance(batch, ImmutableBatch)

    def test_invalid_batch_size_rejected(self, q3_query):
        with pytest.raises(ValueError):
            SPOConfig(q3_query, WindowSpec.count(100, 20), batch_size=0)
