"""Distributed SPO-Join topology vs the local operator."""

import random
from collections import defaultdict

import pytest

from repro.core import (
    JoinType,
    Op,
    QuerySpec,
    SPOJoin,
    StreamTuple,
    WindowSpec,
)
from repro.dspe.router import RawTuple
from repro.joins import CSSImmutableBatch, SPOConfig, run_spo


def make_raws(n, streams, seed, hi=25, int_vals=True):
    rng = random.Random(seed)
    raws = []
    for i in range(n):
        if int_vals:
            values = (rng.randint(0, hi), rng.randint(0, hi))
        else:
            values = (rng.random(), rng.random())
        raws.append(RawTuple(rng.choice(streams), values, i * 0.001))
    return raws


def source_of(raws):
    def gen():
        for raw in raws:
            yield raw.event_time, raw
    return gen()


def distributed_results(res):
    combined = defaultdict(set)
    for name in ("mutable_result", "immutable_result"):
        for record in res.records_named(name):
            combined[record.payload["tid"]].update(record.payload["matches"])
    return combined


def local_results(query, raws, window, sub_intervals=1):
    join = SPOJoin(query, window, sub_intervals=sub_intervals)
    out = {}
    for i, raw in enumerate(raws):
        t = StreamTuple(i, raw.stream, raw.values, raw.event_time)
        out[i] = {m for __, m in join.process(t)}
    return out


WINDOW = WindowSpec.count(100, 20)


class TestExactness:
    """With one PO-Join PE, expiry is prompt and results are exact."""

    def test_cross_join(self, q1_query):
        raws = make_raws(500, ["R", "S"], seed=30)
        res = run_spo(source_of(raws), SPOConfig(q1_query, WINDOW, num_pojoin_pes=1))
        assert distributed_results(res) == defaultdict(
            set, local_results(q1_query, raws, WINDOW)
        )

    def test_self_join(self, q3_query):
        raws = make_raws(400, ["NYC"], seed=31, int_vals=False)
        res = run_spo(source_of(raws), SPOConfig(q3_query, WINDOW, num_pojoin_pes=1))
        assert distributed_results(res) == defaultdict(
            set, local_results(q3_query, raws, WINDOW)
        )

    def test_band_join_time_window(self, q2_query):
        raws = make_raws(400, ["NYC"], seed=32, int_vals=False)
        window = WindowSpec.time(0.1, 0.02)
        res = run_spo(source_of(raws), SPOConfig(q2_query, window, num_pojoin_pes=1))
        assert distributed_results(res) == defaultdict(
            set, local_results(q2_query, raws, window)
        )

    def test_equi_join(self):
        q = QuerySpec.equi("qe")
        rng = random.Random(33)
        raws = [
            RawTuple(rng.choice(["R", "S"]), (rng.randrange(20),), i * 0.001)
            for i in range(400)
        ]
        res = run_spo(source_of(raws), SPOConfig(q, WINDOW, num_pojoin_pes=1))
        assert distributed_results(res) == defaultdict(
            set, local_results(q, raws, WINDOW)
        )

    def test_hash_evaluator(self, q1_query):
        raws = make_raws(400, ["R", "S"], seed=34)
        res = run_spo(
            source_of(raws),
            SPOConfig(q1_query, WINDOW, num_pojoin_pes=1, evaluator="hash"),
        )
        assert distributed_results(res) == defaultdict(
            set, local_results(q1_query, raws, WINDOW)
        )

    def test_css_immutable_variant(self, q1_query):
        raws = make_raws(400, ["R", "S"], seed=35)
        res = run_spo(
            source_of(raws),
            SPOConfig(
                q1_query,
                WINDOW,
                num_pojoin_pes=1,
                batch_factory=lambda q, mb: CSSImmutableBatch(q, mb),
            ),
        )
        assert distributed_results(res) == defaultdict(
            set, local_results(q1_query, raws, WINDOW)
        )


class TestMultiPE:
    """Multiple PO-Join PEs: no result is lost; extras only from expiry lag."""

    @pytest.mark.parametrize("strategy", ["rr", "dc"])
    def test_superset_with_expired_extras_only(self, q1_query, strategy):
        raws = make_raws(600, ["R", "S"], seed=36)
        res = run_spo(
            source_of(raws),
            SPOConfig(
                q1_query,
                WINDOW,
                num_pojoin_pes=3,
                state_strategy=strategy,
                cache_sync_interval=0.002,
            ),
            num_nodes=3,
        )
        got = distributed_results(res)
        expected = local_results(q1_query, raws, WINDOW)
        for tid, exp in expected.items():
            extras = got[tid] - exp
            assert exp <= got[tid], tid  # completeness
            # Any extra match must be an already-expired (older) tuple.
            assert all(e < tid for e in extras), (tid, extras)

    def test_merge_batches_round_robin_over_pes(self, q3_query):
        raws = make_raws(400, ["NYC"], seed=37, int_vals=False)
        res = run_spo(
            source_of(raws), SPOConfig(q3_query, WINDOW, num_pojoin_pes=4),
            num_nodes=4,
        )
        built = res.records_named("merge_built")
        pes = defaultdict(int)
        for record in built:
            pes[record.payload["pe"]] += 1
        assert len(pes) == 4  # all PEs received merges
        assert max(pes.values()) - min(pes.values()) <= 1

    def test_flag_queue_drains(self, q3_query):
        raws = make_raws(300, ["NYC"], seed=38, int_vals=False)
        res = run_spo(source_of(raws), SPOConfig(q3_query, WINDOW, num_pojoin_pes=1))
        drains = res.records_named("queue_drained")
        assert drains, "merge boundaries should buffer and drain tuples"
        # Every routed tuple got an immutable probe exactly once.
        probes = res.records_named("immutable_result")
        tids = sorted(r.payload["tid"] for r in probes)
        assert tids == list(range(300))


class TestCorrectnessExperiment:
    """Figure 18: provenance on/off at the logical operator."""

    def test_without_provenance_correctness_drops(self, q1_query):
        # A burst arrival backlogs both predicate PEs; because their
        # service times differ, partials of different tuples interleave at
        # the logical PE — the out-of-order hazard of Section 4.3.
        raws = make_raws(800, ["R", "S"], seed=39)
        for raw in raws:
            raw.event_time = 0.0  # burst: everything arrives at once
        res = run_spo(
            source_of(raws),
            SPOConfig(q1_query, WINDOW, num_pojoin_pes=1, use_provenance=False),
            logical_pes=1,
        )
        records = res.records_named("mutable_result")
        incorrect = [r for r in records if not r.payload["correct"]]
        assert incorrect, "overwrite semantics should mispair some tuples"

    def test_with_provenance_always_correct(self, q1_query):
        raws = make_raws(400, ["R", "S"], seed=40)
        res = run_spo(
            source_of(raws),
            SPOConfig(q1_query, WINDOW, num_pojoin_pes=1, use_provenance=True),
            logical_pes=1,
        )
        records = res.records_named("mutable_result")
        assert records and all(r.payload["correct"] for r in records)
