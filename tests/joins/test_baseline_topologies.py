"""Baseline distributed topologies: chain index, SJ, BCHJ, hash join."""

import random
from collections import defaultdict

import pytest

from repro.core import QuerySpec, StreamTuple, WindowSpec
from repro.dspe.router import RawTuple
from repro.joins import (
    NestedLoopJoin,
    build_chain_topology,
    build_hash_join_topology,
    build_nlj_topology,
    run_topology,
)

WINDOW = WindowSpec.count(100, 20)


def make_raws(n, streams, seed, hi=25):
    rng = random.Random(seed)
    return [
        RawTuple(rng.choice(streams), (rng.randint(0, hi), rng.randint(0, hi)), i * 0.001)
        for i in range(n)
    ]


def source_of(raws):
    return ((raw.event_time, raw) for raw in raws)


def combined_results(res):
    out = defaultdict(set)
    for record in res.records_named("result"):
        out[record.payload["tid"]].update(record.payload["matches"])
    return out


def nlj_reference(query, raws, window):
    ref = NestedLoopJoin(query, window)
    out = {}
    for i, raw in enumerate(raws):
        t = StreamTuple(i, raw.stream, raw.values, raw.event_time)
        out[i] = {m for __, m in ref.process(t)}
    return out


class TestSplitJoin:
    @pytest.mark.parametrize("pes", [1, 3])
    def test_matches_reference(self, q3_query, pes):
        raws = make_raws(300, ["NYC"], seed=50)
        topo = build_nlj_topology(source_of(raws), q3_query, WINDOW, mode="sj", joiner_pes=pes)
        got = combined_results(run_topology(topo))
        assert got == defaultdict(set, nlj_reference(q3_query, raws, WINDOW))

    def test_each_pe_stores_share(self, q3_query):
        raws = make_raws(90, ["NYC"], seed=51)
        topo = build_nlj_topology(source_of(raws), q3_query, WINDOW, mode="sj", joiner_pes=3)
        res = run_topology(topo)
        # In SJ every PE probes every tuple.
        assert len(res.records_named("result")) == 90 * 3


class TestBroadcastHashJoin:
    @pytest.mark.parametrize("pes", [1, 4])
    def test_matches_reference(self, q1_query, pes):
        raws = make_raws(300, ["R", "S"], seed=52)
        topo = build_nlj_topology(source_of(raws), q1_query, WINDOW, mode="bchj", joiner_pes=pes)
        got = combined_results(run_topology(topo))
        assert got == defaultdict(set, nlj_reference(q1_query, raws, WINDOW))

    def test_each_tuple_probed_once(self, q1_query):
        raws = make_raws(80, ["R", "S"], seed=53)
        topo = build_nlj_topology(source_of(raws), q1_query, WINDOW, mode="bchj", joiner_pes=4)
        res = run_topology(topo)
        assert len(res.records_named("result")) == 80


class TestChainTopology:
    @pytest.mark.parametrize("pes", [1, 3])
    def test_matches_reference(self, q3_query, pes):
        raws = make_raws(400, ["NYC"], seed=54)
        topo = build_chain_topology(source_of(raws), q3_query, WINDOW, joiner_pes=pes)
        got = combined_results(run_topology(topo))
        assert got == defaultdict(set, nlj_reference(q3_query, raws, WINDOW))

    def test_cross_join(self, q1_query):
        raws = make_raws(300, ["R", "S"], seed=55)
        topo = build_chain_topology(source_of(raws), q1_query, WINDOW, joiner_pes=2)
        got = combined_results(run_topology(topo))
        assert got == defaultdict(set, nlj_reference(q1_query, raws, WINDOW))


class TestHashJoinTopology:
    @pytest.mark.parametrize("pes", [1, 4])
    def test_matches_reference(self, pes):
        q = QuerySpec.equi("qe")
        rng = random.Random(56)
        raws = [
            RawTuple(rng.choice(["R", "S"]), (rng.randrange(15),), i * 0.001)
            for i in range(300)
        ]
        topo = build_hash_join_topology(source_of(raws), q, WINDOW, joiner_pes=pes)
        got = combined_results(run_topology(topo))
        assert got == defaultdict(set, nlj_reference(q, raws, WINDOW))
