"""Every local join algorithm must agree with the nested-loop baseline."""

import random

import pytest

from repro.core import JoinType, Op, QuerySpec, WindowSpec, make_tuple
from repro.joins import (
    BPlusTreeJoin,
    ChainIndexJoin,
    HashEquiJoin,
    NestedLoopJoin,
    PIMTreeJoin,
    make_spo_join,
)

from ..conftest import interleaved_rs, random_tuples


def drive_pair(algo_a, algo_b, tuples):
    for t in tuples:
        got_a = sorted(m for __, m in algo_a.process(t))
        got_b = sorted(m for __, m in algo_b.process(t))
        assert got_a == got_b, (t.tid, got_a, got_b)


WINDOW = WindowSpec.count(100, 20)


class TestSelfJoinAgreement:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda q: make_spo_join(q, WINDOW),
            lambda q: make_spo_join(q, WINDOW, mutable="hash"),
            lambda q: make_spo_join(q, WINDOW, immutable="css_bit"),
            lambda q: make_spo_join(q, WINDOW, immutable="css_hash"),
            lambda q: make_spo_join(q, WINDOW, sub_intervals=1, num_threads=4),
            lambda q: ChainIndexJoin(q, WINDOW),
            lambda q: BPlusTreeJoin(q, WINDOW),
        ],
        ids=["spo", "spo_hash", "css_bit", "css_hash", "spo_mt", "chain", "bptree"],
    )
    def test_agrees_with_nlj(self, q3_query, factory):
        tuples = random_tuples(400, seed=20)
        drive_pair(factory(q3_query), NestedLoopJoin(q3_query, WINDOW), tuples)

    def test_band_join_agreement(self, q2_query):
        tuples = random_tuples(300, seed=21)
        drive_pair(
            make_spo_join(q2_query, WINDOW),
            NestedLoopJoin(q2_query, WINDOW),
            tuples,
        )

    def test_pim_tree_agreement_fresh_window(self, q3_query):
        # PIM expiry is coarse; compare within a never-expiring horizon.
        big = WindowSpec.count(500, 100)
        tuples = random_tuples(450, seed=22)
        drive_pair(
            PIMTreeJoin(q3_query, big), NestedLoopJoin(q3_query, big), tuples
        )


class TestCrossJoinAgreement:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda q: make_spo_join(q, WINDOW),
            lambda q: make_spo_join(q, WINDOW, use_offsets=False),
            lambda q: make_spo_join(q, WINDOW, immutable="css_bit"),
            lambda q: ChainIndexJoin(q, WINDOW),
            lambda q: BPlusTreeJoin(q, WINDOW),
        ],
        ids=["spo", "spo_nooff", "css_bit", "chain", "bptree"],
    )
    def test_agrees_with_nlj(self, q1_query, factory):
        tuples = interleaved_rs(400, seed=23)
        drive_pair(factory(q1_query), NestedLoopJoin(q1_query, WINDOW), tuples)


class TestEquiJoin:
    def test_hash_join_agrees_with_nlj(self):
        q = QuerySpec.equi("qe")
        rng = random.Random(24)
        tuples = [
            make_tuple(i, rng.choice(["R", "S"]), rng.randrange(12))
            for i in range(400)
        ]
        drive_pair(HashEquiJoin(q, WINDOW), NestedLoopJoin(q, WINDOW), tuples)

    def test_spo_handles_equi(self):
        q = QuerySpec.equi("qe")
        rng = random.Random(25)
        tuples = [
            make_tuple(i, rng.choice(["R", "S"]), rng.randrange(12))
            for i in range(400)
        ]
        drive_pair(make_spo_join(q, WINDOW), HashEquiJoin(q, WINDOW), tuples)

    def test_hash_join_rejects_inequality(self, q3_query):
        with pytest.raises(ValueError):
            HashEquiJoin(q3_query, WINDOW)


class TestVariants:
    def test_unknown_immutable_variant_rejected(self, q3_query):
        with pytest.raises(ValueError):
            make_spo_join(q3_query, WINDOW, immutable="btree")

    def test_nlj_mode_validation(self, q3_query):
        from repro.joins import NLJJoinerOperator

        with pytest.raises(ValueError):
            NLJJoinerOperator(q3_query, WINDOW, mode="zigzag")

    def test_memory_accounting_exposed(self, q3_query):
        tuples = random_tuples(200, seed=26)
        for algo in [
            make_spo_join(q3_query, WINDOW),
            ChainIndexJoin(q3_query, WINDOW),
            BPlusTreeJoin(q3_query, WINDOW),
            NestedLoopJoin(q3_query, WINDOW),
        ]:
            for t in tuples:
                algo.process(t)
            assert algo.memory_bits() > 0
