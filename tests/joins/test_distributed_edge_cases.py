"""Distributed SPO edge cases: band multi-PE, tiny windows, empty streams."""

import random
from collections import defaultdict

import pytest

from repro.core import QuerySpec, SPOJoin, StreamTuple, WindowSpec
from repro.dspe.router import RawTuple
from repro.joins import SPOConfig, run_spo


def collect(res):
    combined = defaultdict(set)
    for name in ("mutable_result", "immutable_result"):
        for record in res.records_named(name):
            combined[record.payload["tid"]].update(record.payload["matches"])
    return combined


def local_reference(query, raws, window, sub_intervals=1):
    join = SPOJoin(query, window, sub_intervals=sub_intervals)
    return {
        i: {m for __, m in join.process(
            StreamTuple(i, raw.stream, raw.values, raw.event_time)
        )}
        for i, raw in enumerate(raws)
    }


class TestBandMultiPE:
    def test_band_join_three_pes_complete(self, q2_query):
        rng = random.Random(60)
        raws = [
            RawTuple("NYC", (rng.random(), rng.random()), i * 0.001)
            for i in range(400)
        ]
        window = WindowSpec.count(100, 20)
        expected = local_reference(q2_query, raws, window)
        res = run_spo(
            ((raw.event_time, raw) for raw in raws),
            SPOConfig(q2_query, window, num_pojoin_pes=3),
            num_nodes=3,
        )
        got = collect(res)
        for tid, exp in expected.items():
            assert exp <= got[tid], tid
            assert all(e < tid for e in got[tid] - exp)


class TestDegenerateInputs:
    def test_empty_source(self, q1_query):
        res = run_spo(iter([]), SPOConfig(q1_query, WindowSpec.count(10, 5)))
        assert res.records == []

    def test_single_tuple(self, q1_query):
        raws = [RawTuple("R", (1.0, 2.0), 0.0)]
        res = run_spo(
            ((raw.event_time, raw) for raw in raws),
            SPOConfig(q1_query, WindowSpec.count(10, 5)),
        )
        mutable = res.records_named("mutable_result")
        assert len(mutable) == 1
        assert mutable[0].payload["matches"] == []

    def test_window_of_one_slide(self, q1_query):
        rng = random.Random(61)
        raws = [
            RawTuple(rng.choice(["R", "S"]),
                     (rng.randint(0, 10), rng.randint(0, 10)), i * 0.001)
            for i in range(150)
        ]
        window = WindowSpec.count(30, 30)
        expected = local_reference(q1_query, raws, window)
        res = run_spo(
            ((raw.event_time, raw) for raw in raws),
            SPOConfig(q1_query, window, num_pojoin_pes=1),
        )
        got = collect(res)
        for tid, exp in expected.items():
            assert got[tid] == exp, tid

    @pytest.mark.parametrize("evaluator", ["bit", "hash"])
    def test_nan_values_distributed(self, q3_query, evaluator):
        # Regression: the predicate PEs' field windows used to index NaN
        # keys (corrupting the B+-tree ordering, so drained runs reached
        # the immutable tier mis-sorted) and NaN probe values were handed
        # to range_search as bounds its stop condition never fires on —
        # batch sizes 1 and 7 disagreed and both disagreed with the local
        # SPOJoin.  NaN now matches nothing on either side, identically
        # at every batch size.
        rng = random.Random(63)
        raws = []
        for i in range(300):
            values = [rng.random(), rng.random()]
            if i % 11 == 0:
                values[i % 2] = float("nan")
            raws.append(RawTuple("NYC", tuple(values), i * 0.001))
        window = WindowSpec.count(120, 30)
        expected = local_reference(q3_query, raws, window)
        per_batch = []
        for batch_size in (1, 7):
            res = run_spo(
                ((raw.event_time, raw) for raw in raws),
                SPOConfig(
                    q3_query, window, num_pojoin_pes=1,
                    evaluator=evaluator, batch_size=batch_size,
                ),
            )
            per_batch.append(collect(res))
        assert per_batch[0] == per_batch[1]
        nan_tids = {i for i in range(300) if i % 11 == 0}
        for tid, exp in expected.items():
            assert per_batch[0][tid] == exp, tid
            if tid in nan_tids:
                assert not exp
            assert not (per_batch[0][tid] & nan_tids), tid

    def test_more_pes_than_merges(self, q3_query):
        # 8 PO-Join PEs but only ~3 merges: most PEs never own a batch.
        rng = random.Random(62)
        raws = [
            RawTuple("NYC", (rng.random(), rng.random()), i * 0.001)
            for i in range(70)
        ]
        window = WindowSpec.count(60, 20)
        expected = local_reference(q3_query, raws, window)
        res = run_spo(
            ((raw.event_time, raw) for raw in raws),
            SPOConfig(q3_query, window, num_pojoin_pes=8),
            num_nodes=4,
        )
        got = collect(res)
        for tid, exp in expected.items():
            assert exp <= got[tid], tid
