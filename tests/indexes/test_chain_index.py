"""Chain index: active/archive roll-over, coarse expiry, full-chain search."""

import random

import pytest

from repro.indexes import ChainIndex


class TestRollOver:
    def test_active_rolls_at_capacity(self):
        chain = ChainIndex(sub_index_capacity=10)
        for i in range(25):
            chain.insert(i, i)
        assert chain.num_sub_indexes == 3
        assert len(chain) == 25

    def test_max_sub_indexes_enforced(self):
        chain = ChainIndex(sub_index_capacity=10, max_sub_indexes=3)
        for i in range(100):
            chain.insert(i, i)
        assert chain.num_sub_indexes <= 3
        assert chain.expired_sub_indexes > 0

    def test_expire_oldest_counts(self):
        chain = ChainIndex(sub_index_capacity=5)
        for i in range(12):
            chain.insert(i, i)
        removed = chain.expire_oldest()
        assert removed == 5
        assert len(chain) == 7

    def test_expire_refuses_last_sub_index(self):
        chain = ChainIndex(sub_index_capacity=5)
        chain.insert(1, 1)
        assert chain.expire_oldest() == 0
        assert len(chain) == 1

    def test_manual_roll_active(self):
        chain = ChainIndex(sub_index_capacity=100)
        chain.insert(1, 1)
        chain.roll_active()
        assert chain.num_sub_indexes == 2
        assert len(chain.active) == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ChainIndex(0)
        with pytest.raises(ValueError):
            ChainIndex(5, max_sub_indexes=0)


class TestSearch:
    def test_search_spans_all_sub_indexes(self):
        rng = random.Random(0)
        chain = ChainIndex(sub_index_capacity=20)
        entries = []
        for i in range(100):
            v = rng.randint(0, 15)
            chain.insert(v, i)
            entries.append((v, i))
        got = sorted(chain.range_search(5, 10))
        assert got == sorted((v, i) for v, i in entries if 5 <= v <= 10)

    def test_search_after_expiry_drops_old(self):
        chain = ChainIndex(sub_index_capacity=10, max_sub_indexes=2)
        for i in range(30):
            chain.insert(i % 5, i)
        got = {tid for __, tid in chain.range_search(None, None)}
        # Only the last two sub-indexes (tuples 10..29) survive.
        assert got == set(range(10, 30))

    def test_exact_search(self):
        chain = ChainIndex(sub_index_capacity=3)
        for i in range(9):
            chain.insert(7, i)
        assert sorted(chain.search(7)) == list(range(9))
        assert chain.search(8) == []

    def test_memory_grows_with_content(self):
        small = ChainIndex(10)
        big = ChainIndex(10)
        for i in range(5):
            small.insert(i, i)
        for i in range(500):
            big.insert(i, i)
        assert small.memory_bits() < big.memory_bits()
