"""CSS-tree: implicit directory search, block scans, rebuild-on-insert."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes import CSSTree


def entries_of(values):
    return sorted((v, i) for i, v in enumerate(values))


class TestConstruction:
    def test_empty(self):
        tree = CSSTree()
        assert len(tree) == 0
        assert tree.num_blocks == 0
        assert list(tree.items()) == []
        assert list(tree.range_search(0, 10)) == []

    def test_blocks_sized(self):
        tree = CSSTree([(i, i) for i in range(100)], block_size=8)
        assert tree.num_blocks == 13  # ceil(100/8)
        tree.check_invariants()

    def test_directory_levels(self):
        tree = CSSTree([(i, i) for i in range(1000)], block_size=4, fanout=4)
        # 250 blocks -> levels of 250, 63, 16, 4 keys.
        assert tree.height >= 3

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CSSTree(block_size=1)
        with pytest.raises(ValueError):
            CSSTree(fanout=1)

    def test_items_roundtrip(self):
        entries = entries_of([random.Random(0).randint(0, 30) for __ in range(300)])
        tree = CSSTree(entries, block_size=16, fanout=4)
        assert list(tree.items()) == entries


class TestSearch:
    @pytest.fixture
    def tree_and_entries(self):
        rng = random.Random(1)
        entries = entries_of([rng.randint(0, 40) for __ in range(600)])
        return CSSTree(entries, block_size=8, fanout=4), entries

    def test_exact_search(self, tree_and_entries):
        tree, entries = tree_and_entries
        for probe in range(-2, 45):
            got = sorted(tree.search(probe))
            exp = sorted(i for v, i in entries if v == probe)
            assert got == exp

    @pytest.mark.parametrize(
        "lo_inc,hi_inc",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_range_search(self, tree_and_entries, lo_inc, hi_inc):
        tree, entries = tree_and_entries
        got = list(tree.range_search(12, 28, lo_inc, hi_inc))
        exp = sorted(
            (v, i)
            for v, i in entries
            if (v > 12 or (lo_inc and v == 12)) and (v < 28 or (hi_inc and v == 28))
        )
        assert got == exp

    def test_range_below_all(self, tree_and_entries):
        tree, __ = tree_and_entries
        assert list(tree.range_search(-10, -5)) == []

    def test_open_ranges(self, tree_and_entries):
        tree, entries = tree_and_entries
        assert list(tree.range_search(None, None)) == entries


class TestInsertion:
    def test_insert_into_empty(self):
        tree = CSSTree()
        tree.insert(5.0, 1)
        assert list(tree.items()) == [(5.0, 1)]

    def test_insert_forces_directory_rebuild(self):
        tree = CSSTree([(i, i) for i in range(64)], block_size=8)
        before = tree.rebuild_count
        tree.insert(3.5, 100)
        assert tree.rebuild_count == before + 1

    def test_many_inserts_stay_sorted(self):
        rng = random.Random(2)
        tree = CSSTree(block_size=8, fanout=4)
        entries = []
        for i in range(300):
            v = rng.randint(0, 40)
            tree.insert(v, i)
            entries.append((v, i))
        assert list(tree.items()) == sorted(entries)
        tree.check_invariants()


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-30, max_value=30), max_size=200),
        block_size=st.integers(min_value=2, max_value=32),
        fanout=st.integers(min_value=2, max_value=16),
        lo=st.integers(min_value=-35, max_value=35),
        hi=st.integers(min_value=-35, max_value=35),
    )
    def test_range_matches_filter(self, values, block_size, fanout, lo, hi):
        entries = entries_of(values)
        tree = CSSTree(entries, block_size=block_size, fanout=fanout)
        tree.check_invariants()
        got = list(tree.range_search(lo, hi))
        assert got == sorted((v, i) for v, i in entries if lo <= v <= hi)
