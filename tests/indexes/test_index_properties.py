"""Cross-index property tests: all four structures answer ranges alike."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes import BPlusTree, ChainIndex, CSSTree, PIMTree


def reference_range(entries, lo, hi):
    return sorted((v, i) for v, i in entries if lo <= v <= hi)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-20, max_value=20), max_size=120),
    lo=st.integers(min_value=-25, max_value=25),
    hi=st.integers(min_value=-25, max_value=25),
    capacity=st.integers(min_value=1, max_value=40),
)
def test_chain_index_matches_reference(values, lo, hi, capacity):
    entries = [(v, i) for i, v in enumerate(values)]
    chain = ChainIndex(sub_index_capacity=capacity)
    for v, tid in entries:
        chain.insert(v, tid)
    assert sorted(chain.range_search(lo, hi)) == reference_range(entries, lo, hi)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-20, max_value=20), max_size=120),
    lo=st.integers(min_value=-25, max_value=25),
    hi=st.integers(min_value=-25, max_value=25),
    merge_every=st.integers(min_value=5, max_value=50),
)
def test_pim_tree_matches_reference(values, lo, hi, merge_every):
    entries = [(v, i) for i, v in enumerate(values)]
    tree = PIMTree(depth=2, fanout=4)
    for count, (v, tid) in enumerate(entries, start=1):
        tree.insert(v, tid)
        if count % merge_every == 0:
            tree.merge()
    assert sorted(tree.range_search(lo, hi)) == reference_range(entries, lo, hi)


@settings(max_examples=30, deadline=None)
@given(
    initial=st.lists(st.integers(min_value=-20, max_value=20), max_size=80),
    inserts=st.lists(st.integers(min_value=-20, max_value=20), max_size=30),
    lo=st.integers(min_value=-25, max_value=25),
    hi=st.integers(min_value=-25, max_value=25),
)
def test_css_insert_path_matches_reference(initial, inserts, lo, hi):
    entries = sorted((v, i) for i, v in enumerate(initial))
    tree = CSSTree(entries, block_size=4, fanout=4)
    for j, v in enumerate(inserts):
        tid = 1000 + j
        tree.insert(v, tid)
        entries.append((v, tid))
    assert sorted(tree.range_search(lo, hi)) == reference_range(entries, lo, hi)
    tree.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-20, max_value=20), max_size=150),
    lo=st.integers(min_value=-25, max_value=25),
    hi=st.integers(min_value=-25, max_value=25),
)
def test_all_indexes_agree(values, lo, hi):
    """Every structure answers the same range identically."""
    entries = [(v, i) for i, v in enumerate(values)]
    expected = reference_range(entries, lo, hi)

    bpt = BPlusTree(order=6)
    chain = ChainIndex(sub_index_capacity=17)
    pim = PIMTree(depth=1, fanout=4)
    for v, tid in entries:
        bpt.insert(v, tid)
        chain.insert(v, tid)
        pim.insert(v, tid)
    css = CSSTree(sorted(entries), block_size=4, fanout=4)

    assert list(bpt.range_search(lo, hi)) == expected
    assert sorted(chain.range_search(lo, hi)) == expected
    assert sorted(pim.range_search(lo, hi)) == expected
    assert list(css.range_search(lo, hi)) == expected
