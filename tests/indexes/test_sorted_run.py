"""Sorted runs: construction, binary-search positions, accounting."""

import pytest

from repro.indexes import SortedRun


class TestConstruction:
    def test_from_sorted_entries(self):
        run = SortedRun.from_sorted_entries([(1, 10), (2, 11), (2, 12)])
        assert run.values == [1, 2, 2]
        assert run.tids == [10, 11, 12]

    def test_from_unsorted_entries(self):
        run = SortedRun.from_unsorted_entries([(3, 1), (1, 2), (2, 3)])
        assert run.values == [1, 2, 3]
        assert run.tids == [2, 3, 1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SortedRun([1, 2], [1])

    def test_iteration(self):
        run = SortedRun([1, 2], [10, 20])
        assert list(run) == [(1, 10), (2, 20)]


class TestPositions:
    @pytest.fixture
    def run(self):
        return SortedRun([1, 3, 3, 5, 9], [0, 1, 2, 3, 4])

    def test_position_left(self, run):
        assert run.position_left(3) == 1
        assert run.position_left(0) == 0
        assert run.position_left(10) == 5

    def test_position_right(self, run):
        assert run.position_right(3) == 3
        assert run.position_right(9) == 5

    def test_accessors(self, run):
        assert run.value_at(3) == 5
        assert run.tid_at(3) == 3

    def test_positions_of_tids(self, run):
        assert run.positions_of_tids() == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_memory_bits(self, run):
        assert run.memory_bits() == 2 * 64 * 5
