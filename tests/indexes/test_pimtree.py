"""PIM-tree: two-tier inserts, merges, and combined probing."""

import random

import pytest

from repro.indexes import PIMTree


class TestInsertAndMerge:
    def test_inserts_go_to_mutable(self):
        tree = PIMTree()
        for i in range(50):
            tree.insert(i, i)
        assert tree.mutable_size == 50
        assert len(tree.immutable) == 0

    def test_merge_moves_to_immutable(self):
        tree = PIMTree()
        for i in range(50):
            tree.insert(i, i)
        tree.merge()
        assert tree.mutable_size == 0
        assert len(tree.immutable) == 50
        assert tree.merge_count == 1

    def test_regions_partition_after_merge(self):
        tree = PIMTree(depth=2, fanout=4)
        for i in range(200):
            tree.insert(i, i)
        tree.merge()
        assert tree.num_regions > 1
        # Post-merge inserts land in different regions by value.
        tree.insert(0, 1000)
        tree.insert(199, 1001)
        assert tree.mutable_size == 2

    def test_repeated_merges_accumulate(self):
        tree = PIMTree(depth=1, fanout=4)
        total = []
        for round_ in range(4):
            for i in range(30):
                tid = round_ * 30 + i
                tree.insert(tid % 13, tid)
                total.append((tid % 13, tid))
            tree.merge()
        assert sorted(tree.items()) == sorted(total)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            PIMTree(depth=0)


class TestSearch:
    def test_search_spans_both_tiers(self):
        rng = random.Random(0)
        tree = PIMTree(depth=2, fanout=4)
        entries = []
        for i in range(100):
            v = rng.randint(0, 20)
            tree.insert(v, i)
            entries.append((v, i))
        tree.merge()
        for i in range(100, 150):
            v = rng.randint(0, 20)
            tree.insert(v, i)
            entries.append((v, i))
        got = sorted(tree.range_search(5, 12))
        assert got == sorted((v, i) for v, i in entries if 5 <= v <= 12)

    def test_exact_search(self):
        tree = PIMTree()
        tree.insert(5, 1)
        tree.merge()
        tree.insert(5, 2)
        assert sorted(tree.search(5)) == [1, 2]

    def test_memory_includes_both_tiers(self):
        tree = PIMTree()
        for i in range(100):
            tree.insert(i, i)
        before = tree.memory_bits()
        tree.merge()
        for i in range(100, 200):
            tree.insert(i, i)
        assert tree.memory_bits() > before
