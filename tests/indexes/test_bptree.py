"""B+-tree: ordering, range search, deletion, and structural invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes import BPlusTree


def build(entries, order=8):
    tree = BPlusTree(order=order)
    for value, tid in entries:
        tree.insert(value, tid)
    return tree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.min() is None
        assert tree.max() is None
        assert tree.search(1.0) == []

    def test_single_entry(self):
        tree = build([(5.0, 1)])
        assert len(tree) == 1
        assert tree.min() == (5.0, 1)
        assert tree.max() == (5.0, 1)
        assert tree.search(5.0) == [1]

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_items_sorted(self):
        entries = [(random.Random(1).randint(0, 50), i) for i in range(500)]
        rng = random.Random(1)
        entries = [(rng.randint(0, 50), i) for i in range(500)]
        tree = build(entries)
        assert list(tree.items()) == sorted(entries)

    def test_items_reversed(self):
        rng = random.Random(2)
        entries = [(rng.randint(0, 50), i) for i in range(300)]
        tree = build(entries)
        assert list(tree.items_reversed()) == sorted(entries, reverse=True)

    def test_duplicates_kept_distinct(self):
        tree = build([(7.0, 1), (7.0, 2), (7.0, 3)])
        assert sorted(tree.search(7.0)) == [1, 2, 3]

    def test_height_grows_logarithmically(self):
        tree = build([(i, i) for i in range(1000)], order=8)
        assert 3 <= tree.height <= 6

    def test_memory_bits_positive_and_monotone(self):
        small = build([(i, i) for i in range(10)])
        large = build([(i, i) for i in range(1000)])
        assert 0 < small.memory_bits() < large.memory_bits()


class TestRangeSearch:
    @pytest.fixture
    def tree_and_entries(self):
        rng = random.Random(3)
        entries = [(rng.randint(0, 40), i) for i in range(800)]
        return build(entries), entries

    @pytest.mark.parametrize(
        "lo_inc,hi_inc",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_bounded_ranges(self, tree_and_entries, lo_inc, hi_inc):
        tree, entries = tree_and_entries
        got = list(tree.range_search(10, 30, lo_inc, hi_inc))
        exp = sorted(
            (v, i)
            for v, i in entries
            if (v > 10 or (lo_inc and v == 10)) and (v < 30 or (hi_inc and v == 30))
        )
        assert got == exp

    def test_open_low_end(self, tree_and_entries):
        tree, entries = tree_and_entries
        got = list(tree.range_search(None, 15))
        assert got == sorted((v, i) for v, i in entries if v <= 15)

    def test_open_high_end(self, tree_and_entries):
        tree, entries = tree_and_entries
        got = list(tree.range_search(25, None))
        assert got == sorted((v, i) for v, i in entries if v >= 25)

    def test_empty_range(self, tree_and_entries):
        tree, __ = tree_and_entries
        assert list(tree.range_search(100, 200)) == []

    def test_exclusive_empty_point_range(self, tree_and_entries):
        tree, __ = tree_and_entries
        assert list(tree.range_search(10, 10, False, False)) == []


class TestDeletion:
    def test_delete_returns_false_for_absent(self):
        tree = build([(1.0, 1)])
        assert not tree.delete(2.0, 1)
        assert not tree.delete(1.0, 2)
        assert len(tree) == 1

    def test_delete_all_then_empty(self):
        rng = random.Random(4)
        entries = [(rng.randint(0, 30), i) for i in range(400)]
        tree = build(entries)
        rng.shuffle(entries)
        for v, tid in entries:
            assert tree.delete(v, tid)
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_interleaved_insert_delete(self):
        rng = random.Random(5)
        tree = BPlusTree(order=6)
        live = set()
        next_tid = 0
        for step in range(3000):
            if live and rng.random() < 0.45:
                v, tid = rng.choice(sorted(live))
                assert tree.delete(v, tid)
                live.remove((v, tid))
            else:
                v = rng.randint(0, 25)
                tree.insert(v, next_tid)
                live.add((v, next_tid))
                next_tid += 1
            if step % 500 == 0:
                tree.check_invariants()
        assert list(tree.items()) == sorted(live)
        tree.check_invariants()

    def test_delete_maintains_leaf_chain(self):
        entries = [(i, i) for i in range(200)]
        tree = build(entries, order=4)
        for i in range(0, 200, 2):
            assert tree.delete(i, i)
        assert list(tree.items()) == [(i, i) for i in range(1, 200, 2)]
        assert list(tree.items_reversed()) == [
            (i, i) for i in range(199, 0, -2)
        ]


class TestBulkLoad:
    def test_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.items()) == []

    @pytest.mark.parametrize("n", [1, 7, 64, 65, 500])
    @pytest.mark.parametrize("order", [4, 8, 64])
    def test_roundtrip_and_invariants(self, n, order):
        rng = random.Random(n * order)
        entries = sorted((rng.randint(0, 40), i) for i in range(n))
        tree = BPlusTree.bulk_load(entries, order=order)
        assert list(tree.items()) == entries
        assert len(tree) == n
        tree.check_invariants()

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(2, 0), (1, 1)])

    def test_mutable_after_load(self):
        entries = [(i, i) for i in range(200)]
        tree = BPlusTree.bulk_load(entries, order=8)
        tree.insert(50.5, 999)
        assert tree.delete(0, 0)
        tree.check_invariants()
        assert len(tree) == 200

    def test_range_search_after_load(self):
        entries = [(i % 10, i) for i in range(100)]
        tree = BPlusTree.bulk_load(sorted(entries), order=8)
        got = list(tree.range_search(3, 5))
        assert got == sorted((v, i) for v, i in entries if 3 <= v <= 5)

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-30, max_value=30), max_size=300),
        order=st.integers(min_value=4, max_value=32),
    )
    def test_property_bulk_equals_incremental(self, values, order):
        entries = sorted((v, i) for i, v in enumerate(values))
        bulk = BPlusTree.bulk_load(entries, order=order)
        incremental = BPlusTree(order=order)
        for v, tid in entries:
            incremental.insert(v, tid)
        assert list(bulk.items()) == list(incremental.items())
        bulk.check_invariants()


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-50, max_value=50), max_size=200),
        order=st.integers(min_value=4, max_value=32),
    )
    def test_insert_preserves_sorted_order(self, values, order):
        tree = BPlusTree(order=order)
        entries = [(v, i) for i, v in enumerate(values)]
        for v, tid in entries:
            tree.insert(v, tid)
        assert list(tree.items()) == sorted(entries)
        tree.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-20, max_value=20), max_size=150),
        delete_fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_delete_subset_leaves_remainder(self, values, delete_fraction, seed):
        rng = random.Random(seed)
        entries = [(v, i) for i, v in enumerate(values)]
        tree = BPlusTree(order=6)
        for v, tid in entries:
            tree.insert(v, tid)
        to_delete = [e for e in entries if rng.random() < delete_fraction]
        for v, tid in to_delete:
            assert tree.delete(v, tid)
        remaining = sorted(set(entries) - set(to_delete))
        assert list(tree.items()) == remaining
        tree.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=30), max_size=120),
        lo=st.integers(min_value=-5, max_value=35),
        hi=st.integers(min_value=-5, max_value=35),
    )
    def test_range_search_matches_filter(self, values, lo, hi):
        entries = [(v, i) for i, v in enumerate(values)]
        tree = BPlusTree(order=8)
        for v, tid in entries:
            tree.insert(v, tid)
        got = list(tree.range_search(lo, hi))
        assert got == sorted((v, i) for v, i in entries if lo <= v <= hi)
