"""Metrics: summaries, percentiles, CDFs, throughput buckets."""

import pytest

from repro.dspe import (
    RecoveryMetrics,
    LatencyCollector,
    Summary,
    ThroughputCollector,
    cdf_points,
    percentile,
)


class TestSummary:
    def test_empty(self):
        s = Summary([])
        assert s.count == 0
        assert s.mean == 0.0 and s.std == 0.0

    def test_single_value(self):
        s = Summary([5.0])
        assert s.mean == 5.0 and s.std == 0.0
        assert s.min == s.max == 5.0

    def test_known_stats(self):
        s = Summary([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.mean == pytest.approx(5.0)
        assert s.std == pytest.approx(2.0)


class TestPercentile:
    def test_bounds(self):
        vals = list(range(1, 101))
        assert percentile(vals, 0) == 1
        assert percentile(vals, 100) == 100

    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_single(self):
        assert percentile([42], 95) == 42

    def test_unsorted_input(self):
        assert percentile([9, 1, 5, 3, 7], 50) == 5
        assert percentile([10, 0], 50) == pytest.approx(5.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestCDF:
    def test_monotone_and_complete(self):
        points = cdf_points([3, 1, 2, 5, 4], num_points=5)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            cdf_points([])

    def test_single(self):
        assert cdf_points([7.0]) == [(7.0, 1.0)]

    def test_unsorted_input(self):
        points = cdf_points([5, 1, 4, 2, 3], num_points=5)
        assert [p[0] for p in points] == [1, 2, 3, 4, 5]


class TestThroughputCollector:
    def test_bucketing(self):
        c = ThroughputCollector(bucket_seconds=1.0)
        for t in [0.1, 0.2, 0.9, 1.5, 2.1, 2.2, 2.3]:
            c.record(t)
        assert c.per_second() == [3.0, 1.0, 3.0]
        assert c.total == 7

    def test_empty_interior_buckets(self):
        c = ThroughputCollector()
        c.record(0.5)
        c.record(3.5)
        assert c.per_second() == [1.0, 0.0, 0.0, 1.0]

    def test_overall_rate(self):
        c = ThroughputCollector()
        for i in range(10):
            c.record(i * 0.5)
        assert c.overall_rate() == pytest.approx(10 / 4.5)

    def test_empty_rate(self):
        assert ThroughputCollector().overall_rate() == 0.0

    def test_summary(self):
        c = ThroughputCollector()
        for t in [0.1, 0.2, 1.1]:
            c.record(t)
        s = c.summary()
        assert s.mean == pytest.approx(1.5)

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            ThroughputCollector(0)


class TestLatencyCollector:
    def test_percentiles_dict(self):
        c = LatencyCollector()
        for v in range(1, 101):
            c.record(float(v))
        ps = c.percentiles((50, 95))
        assert ps[50] == pytest.approx(50.5)
        assert ps[95] == pytest.approx(95.05)

    def test_max(self):
        c = LatencyCollector()
        assert c.max() == 0.0
        c.record(3.0)
        c.record(1.0)
        assert c.max() == 3.0

    def test_empty_collector_is_guarded(self):
        # Collector-level reporting tolerates an empty sample even though
        # the module-level functions reject it.
        c = LatencyCollector()
        assert c.percentile(95) == 0.0
        assert c.percentiles((50, 99)) == {50: 0.0, 99: 0.0}
        assert c.cdf() == []
        assert c.summary().count == 0

    def test_single_element(self):
        c = LatencyCollector()
        c.record(2.5)
        assert c.percentile(50) == 2.5
        assert c.cdf() == [(2.5, 1.0)]


class TestRecoveryMetrics:
    """Empty-input guards and counter bookkeeping (PR 1 conventions)."""

    def test_empty_guards(self):
        m = RecoveryMetrics()
        assert m.duplicate_ratio() == 0.0
        assert m.mean_checkpoint_overhead() == 0.0
        summary = m.recovery_latency_summary()
        assert summary.count == 0 and summary.mean == 0.0

    def test_empty_to_dict_is_all_zero(self):
        d = RecoveryMetrics().to_dict()
        assert d["crashes"] == 0
        assert d["duplicate_ratio"] == 0.0
        assert d["recovery_latency_mean_s"] == 0.0
        assert d["recovery_latency_max_s"] == 0.0

    def test_crash_and_recovery_accounting(self):
        m = RecoveryMetrics()
        m.record_crash(0.005)
        m.record_crash(0.005)
        m.record_recovery(0.02, replayed=10)
        m.record_recovery(0.04, replayed=5)
        assert m.crashes == 2
        assert m.downtime_total == pytest.approx(0.01)
        assert m.replayed_tuples == 15
        assert m.recovery_latency_summary().mean == pytest.approx(0.03)
        assert m.recovery_latency_summary().max == pytest.approx(0.04)

    def test_checkpoint_accounting(self):
        m = RecoveryMetrics()
        m.record_checkpoint(0.002)
        m.record_checkpoint(0.004, forced=True)
        assert m.checkpoints == 2
        assert m.forced_checkpoints == 1
        assert m.checkpoint_overhead_s == pytest.approx(0.006)
        assert m.mean_checkpoint_overhead() == pytest.approx(0.003)

    def test_duplicate_ratio(self):
        m = RecoveryMetrics()
        for __ in range(3):
            m.record_admitted()
        m.record_duplicate()
        assert m.duplicate_ratio() == pytest.approx(0.25)
        assert m.divergent_records == 0
        m.record_duplicate(divergent=True)
        assert m.divergent_records == 1

    def test_held_counter(self):
        m = RecoveryMetrics()
        m.record_held()
        m.record_held(count=4)
        assert m.held_messages == 5

    def test_to_dict_round_trips_counters(self):
        m = RecoveryMetrics()
        m.record_crash(0.005)
        m.record_recovery(0.02, replayed=3)
        m.record_checkpoint(0.001)
        m.record_admitted(10)
        m.record_duplicate()
        d = m.to_dict()
        assert d["crashes"] == 1
        assert d["replayed_tuples"] == 3
        assert d["records_admitted"] == 10
        assert d["duplicates_dropped"] == 1
        assert d["duplicate_ratio"] == pytest.approx(1 / 11)
        assert d["checkpoints"] == 1
