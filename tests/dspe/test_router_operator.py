"""Router operators: id stamping, batching, cache feeding (strategy B)."""

import pytest

from repro.core import QuerySpec, WindowSpec
from repro.dspe import (
    Engine,
    FlowConfig,
    Grouping,
    Operator,
    RawTuple,
    RouterOperator,
    Topology,
    TupleBatch,
)
from repro.joins import SPOConfig, SPORouterOperator
from repro.workloads import q3


class Sink(Operator):
    def process(self, payload, ctx):
        ctx.record("out", payload)


def router_topology(raws, router_factory):
    topo = Topology()
    topo.add_spout("src", ((r.event_time, r) for r in raws))
    topo.add_bolt("router", router_factory, inputs=[("src", Grouping.shuffle())])
    topo.add_bolt("sink", Sink, inputs=[("router", Grouping.broadcast())])
    return topo


class TestSPORouter:
    def test_ids_monotone_and_event_time_preserved(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(30)]
        config = SPOConfig(q3(), WindowSpec.count(10, 5))
        result = Engine(
            router_topology(raws, lambda: SPORouterOperator(config))
        ).run()
        outs = [r.payload for r in result.records_named("out")]
        assert [t.tid for t in outs] == list(range(30))
        assert all(t.event_time == pytest.approx(t.tid * 0.01) for t in outs)

    def test_dc_strategy_feeds_cache(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(20)]
        config = SPOConfig(
            q3(), WindowSpec.count(10, 5), state_strategy="dc"
        )
        Engine(router_topology(raws, lambda: SPORouterOperator(config))).run()
        # One cache write per routed tuple (Section 4.2, strategy B).
        assert config.cache.writes == 20
        assert config.cache.latest("spo_tuple_count") == 20

    def test_rr_strategy_leaves_cache_untouched(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(20)]
        config = SPOConfig(q3(), WindowSpec.count(10, 5), state_strategy="rr")
        Engine(router_topology(raws, lambda: SPORouterOperator(config))).run()
        assert config.cache.writes == 0


class TestBatchingRouter:
    def _run(self, raws, **router_kw):
        result = Engine(
            router_topology(raws, lambda: RouterOperator(**router_kw))
        ).run()
        return [r.payload for r in result.records_named("out")]

    def test_batch_size_one_emits_bare_tuples(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(5)]
        outs = self._run(raws, batch_size=1)
        assert len(outs) == 5
        assert not any(isinstance(p, TupleBatch) for p in outs)

    def test_full_batches_and_tail_flush(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(10)]
        outs = self._run(raws, batch_size=4)
        assert all(isinstance(p, TupleBatch) for p in outs)
        assert [len(b) for b in outs] == [4, 4, 2]
        # Stamped ids stay globally monotone across batches.
        tids = [t.tid for b in outs for t in b]
        assert tids == list(range(10))

    def test_batch_origin_time_is_oldest_member(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(6)]
        outs = self._run(raws, batch_size=3)
        for batch in outs:
            assert batch.origin_time == min(batch.origin_times)
            assert len(batch.origin_times) == len(batch)

    def test_cut_fn_closes_batch_early(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(9)]
        # Cut after every tuple whose id is congruent 2 mod 3.
        outs = self._run(
            raws, batch_size=100, cut_fn=lambda t: t.tid % 3 == 2
        )
        assert [len(b) for b in outs] == [3, 3, 3]

    def test_flush_timeout_limits_batch_age(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(8)]
        outs = self._run(raws, batch_size=100, flush_timeout=0.0)
        # Zero tolerance: each arrival flushes the previous buffer, so no
        # batch ever holds more than one tuple.
        assert [len(b) for b in outs] == [1] * 8

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            RouterOperator(batch_size=0)

    def test_flush_timeout_zero_with_arrivals_at_time_zero(self):
        # Every tuple arrives at simulated time 0: a zero timeout means
        # the age test (now - opened >= 0) fires on each arrival even
        # though both terms are 0.0, so no batch holds more than one.
        raws = [RawTuple("T", (float(i),), 0.0) for i in range(6)]
        outs = self._run(raws, batch_size=100, flush_timeout=0.0)
        assert [len(b) for b in outs] == [1] * 6

    def test_buffer_opened_at_time_zero_is_not_treated_as_unset(self):
        # A buffer opened at sim time 0.0 is a real open buffer: with a
        # generous timeout nothing flushes early and the tail flush
        # emits one full batch (an ``if opened:`` truthiness bug would
        # re-open the buffer and split it).
        raws = [RawTuple("T", (float(i),), 0.0) for i in range(6)]
        outs = self._run(raws, batch_size=100, flush_timeout=10.0)
        assert [len(b) for b in outs] == [6]


class SlowSink(Operator):
    def process(self, payload, ctx):
        ctx.charge(0.01)
        ctx.record("out", payload)


class TestRouterUnderBackpressure:
    def test_cut_fn_batches_survive_full_downstream_queue(self):
        # The sink's queue (capacity 1, block policy) fills immediately;
        # credit-based backpressure stalls the router mid-stream.  cut_fn
        # boundaries must still close batches at exactly every third
        # tuple and every batch must eventually be delivered, in order.
        raws = [RawTuple("T", (float(i),), 0.0) for i in range(9)]
        topo = Topology()
        topo.add_spout("src", ((r.event_time, r) for r in raws))
        topo.add_bolt(
            "router",
            lambda: RouterOperator(
                batch_size=100, cut_fn=lambda t: t.tid % 3 == 2
            ),
            inputs=[("src", Grouping.shuffle())],
        )
        topo.add_bolt(
            "sink", SlowSink, inputs=[("router", Grouping.broadcast())]
        )
        result = Engine(
            topo, flow=FlowConfig(queue_capacity=1, policy="block")
        ).run()
        outs = [r.payload for r in result.records_named("out")]
        assert [len(b) for b in outs] == [3, 3, 3]
        assert [t.tid for b in outs for t in b] == list(range(9))
        # The stall was real: at least one sender blocked on the full
        # queue, and nothing was shed.
        assert result.flow.metrics.total_blocks() > 0
        assert result.flow.metrics.total_shed_tuples() == 0
