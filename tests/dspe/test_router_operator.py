"""Router operators: id stamping and cache feeding (state strategy B)."""

import pytest

from repro.core import QuerySpec, WindowSpec
from repro.dspe import Engine, Grouping, Operator, RawTuple, Topology
from repro.joins import SPOConfig, SPORouterOperator
from repro.workloads import q3


class Sink(Operator):
    def process(self, payload, ctx):
        ctx.record("out", payload)


def router_topology(raws, router_factory):
    topo = Topology()
    topo.add_spout("src", ((r.event_time, r) for r in raws))
    topo.add_bolt("router", router_factory, inputs=[("src", Grouping.shuffle())])
    topo.add_bolt("sink", Sink, inputs=[("router", Grouping.broadcast())])
    return topo


class TestSPORouter:
    def test_ids_monotone_and_event_time_preserved(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(30)]
        config = SPOConfig(q3(), WindowSpec.count(10, 5))
        result = Engine(
            router_topology(raws, lambda: SPORouterOperator(config))
        ).run()
        outs = [r.payload for r in result.records_named("out")]
        assert [t.tid for t in outs] == list(range(30))
        assert all(t.event_time == pytest.approx(t.tid * 0.01) for t in outs)

    def test_dc_strategy_feeds_cache(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(20)]
        config = SPOConfig(
            q3(), WindowSpec.count(10, 5), state_strategy="dc"
        )
        Engine(router_topology(raws, lambda: SPORouterOperator(config))).run()
        # One cache write per routed tuple (Section 4.2, strategy B).
        assert config.cache.writes == 20
        assert config.cache.latest("spo_tuple_count") == 20

    def test_rr_strategy_leaves_cache_untouched(self):
        raws = [RawTuple("T", (float(i),), i * 0.01) for i in range(20)]
        config = SPOConfig(q3(), WindowSpec.count(10, 5), state_strategy="rr")
        Engine(router_topology(raws, lambda: SPORouterOperator(config))).run()
        assert config.cache.writes == 0
