"""At-least-once ingestion: loss/duplicate injection with offset dedup.

The paper runs its topologies with an at-least-once processing guarantee
"to ensure complete reliability against message loss" (Section 5.3).
The simulated engine models this at the source->router boundary: a
delivery may be lost (redelivered after a timeout) or acknowledged late
(redelivered although the first copy arrived), and consumer-side offset
tracking deduplicates — so every source tuple is processed exactly once,
possibly late.
"""

import random
from collections import Counter, defaultdict

import pytest

from repro.core import QuerySpec, SPOJoin, StreamTuple, WindowSpec
from repro.dspe import Engine, Grouping, Operator, RawTuple, RouterOperator, Topology
from repro.joins import SPOConfig, build_spo_topology
from repro.workloads import q3


class Sink(Operator):
    def process(self, payload, ctx):
        ctx.record("out", payload)


def simple_topology(n, rate=1000.0):
    topo = Topology()
    topo.add_spout("src", ((i / rate, i) for i in range(n)))
    topo.add_bolt("sink", Sink, inputs=[("src", Grouping.round_robin())])
    return topo


class TestLossInjection:
    def test_no_loss_no_redeliveries(self):
        engine = Engine(simple_topology(100))
        result = engine.run()
        assert engine.redeliveries == 0
        assert engine.duplicates_dropped == 0
        assert len(result.records_named("out")) == 100

    @pytest.mark.parametrize("loss", [0.05, 0.2])
    def test_every_tuple_delivered_exactly_once(self, loss):
        engine = Engine(
            simple_topology(500), spout_loss_rate=loss, loss_seed=1
        )
        result = engine.run()
        payloads = Counter(r.payload for r in result.records_named("out"))
        assert len(payloads) == 500
        assert all(count == 1 for count in payloads.values())
        assert engine.redeliveries > 0

    def test_duplicates_are_dropped(self):
        engine = Engine(
            simple_topology(1000), spout_loss_rate=0.3, loss_seed=2
        )
        engine.run()
        # Ack-loss injections produce redundant redeliveries that the
        # consumer's offset tracking must swallow.
        assert engine.duplicates_dropped > 0

    def test_redelivered_tuples_arrive_late(self):
        engine = Engine(
            simple_topology(300, rate=10_000.0),
            spout_loss_rate=0.2,
            redelivery_timeout=0.05,
            loss_seed=3,
        )
        result = engine.run()
        latencies = [r.event_latency for r in result.records_named("out")]
        # Redelivered tuples carry the redelivery timeout in their latency.
        assert max(latencies) >= 0.05

    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(ValueError):
            Engine(simple_topology(1), spout_loss_rate=0.7)


class TestSPOUnderLoss:
    def test_spo_join_complete_under_loss(self, q3_query):
        """Every source tuple flows through the full SPO topology once."""
        rng = random.Random(4)
        n = 400
        raws = [
            RawTuple("NYC", (rng.random(), rng.random()), i * 0.001)
            for i in range(n)
        ]
        config = SPOConfig(q3_query, WindowSpec.count(100, 20), num_pojoin_pes=2)
        topo = build_spo_topology(
            ((raw.event_time, raw) for raw in raws), config
        )
        engine = Engine(topo, num_nodes=2, spout_loss_rate=0.1, loss_seed=5)
        result = engine.run()
        # Each tuple probed the immutable tier exactly once per PE-visit
        # and produced exactly one mutable result.
        mutable_tids = Counter(
            r.payload["tid"] for r in result.records_named("mutable_result")
        )
        assert len(mutable_tids) == n
        assert all(count == 1 for count in mutable_tids.values())
        assert engine.redeliveries > 0
