"""Topology wiring: named streams, multi-consumer routing, validation."""

import pytest

from repro.dspe import Engine, Grouping, Operator, Topology


class Splitter(Operator):
    """Routes even payloads to the default stream, odd to 'side'."""

    def process(self, payload, ctx):
        if payload % 2 == 0:
            ctx.emit(payload)
        else:
            ctx.emit(payload, stream="side")


class Sink(Operator):
    def __init__(self, name):
        self.name = name

    def process(self, payload, ctx):
        ctx.record(self.name, payload)


class TestNamedStreams:
    def test_streams_route_independently(self):
        topo = Topology()
        topo.add_spout("src", ((i * 0.001, i) for i in range(20)))
        topo.add_bolt("split", Splitter, inputs=[("src", Grouping.round_robin())])
        topo.add_bolt(
            "evens",
            lambda: Sink("even"),
            inputs=[("split", Grouping.round_robin())],
        )
        topo.add_bolt(
            "odds",
            lambda: Sink("odd"),
            input_streams=[("split", Grouping.round_robin(), "side")],
        )
        result = Engine(topo).run()
        evens = sorted(r.payload for r in result.records_named("even"))
        odds = sorted(r.payload for r in result.records_named("odd"))
        assert evens == list(range(0, 20, 2))
        assert odds == list(range(1, 20, 2))

    def test_multiple_consumers_of_one_stream(self):
        topo = Topology()
        topo.add_spout("src", ((0.0, i) for i in range(5)))
        topo.add_bolt("a", lambda: Sink("a"), inputs=[("src", Grouping.broadcast())])
        topo.add_bolt("b", lambda: Sink("b"), inputs=[("src", Grouping.broadcast())])
        result = Engine(topo).run()
        assert len(result.records_named("a")) == 5
        assert len(result.records_named("b")) == 5

    def test_consumers_of_reports_subscriptions(self):
        topo = Topology()
        topo.add_spout("src", [])
        topo.add_bolt("split", Splitter, inputs=[("src", Grouping.broadcast())])
        topo.add_bolt(
            "side_sink",
            lambda: Sink("s"),
            input_streams=[("split", Grouping.broadcast(), "side")],
        )
        side = list(topo.consumers_of("split", "side"))
        default = list(topo.consumers_of("split", "default"))
        assert len(side) == 1 and side[0][0].name == "side_sink"
        assert default == []


class TestValidation:
    def test_bolt_parallelism_positive(self):
        topo = Topology()
        topo.add_spout("src", [])
        with pytest.raises(ValueError):
            topo.add_bolt("b", Splitter, parallelism=0, inputs=[])

    def test_fifo_per_link(self):
        """Messages between two PEs keep their emission order."""
        topo = Topology()
        topo.add_spout("src", ((i * 1e-4, i) for i in range(200)))
        topo.add_bolt("mid", Splitter, inputs=[("src", Grouping.round_robin())])
        topo.add_bolt(
            "sink", lambda: Sink("even"), inputs=[("mid", Grouping.round_robin())]
        )
        result = Engine(topo).run()
        seen = [r.payload for r in result.records_named("even")]
        assert seen == sorted(seen)
