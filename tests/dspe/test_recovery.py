"""Recovery layer: logs, checkpoints, held messages, result dedup."""

import pytest

from repro.dspe import (
    Engine,
    FaultConfig,
    Grouping,
    Operator,
    ProcessingElement,
    RecoveryConfig,
    RecoveryManager,
    Topology,
)


class _Noop(Operator):
    def process(self, payload, ctx) -> None:
        pass


def make_pe(name="joiner", index=0):
    return ProcessingElement(name, index, 0, _Noop())


class TestConfigValidation:
    def test_nonpositive_interval(self):
        with pytest.raises(ValueError):
            RecoveryConfig(checkpoint_interval=0.0)

    def test_none_interval_allowed(self):
        assert RecoveryConfig(checkpoint_interval=None).checkpoint_interval is None

    def test_capacity_below_one(self):
        with pytest.raises(ValueError):
            RecoveryConfig(replay_capacity=0)


class TestReplayLog:
    def test_log_fills_and_checkpoint_truncates(self):
        mgr = RecoveryManager(RecoveryConfig(replay_capacity=3))
        pe = make_pe()
        mgr.register(pe)
        for i in range(3):
            assert not mgr.log_is_full(pe)
            mgr.log_delivery(pe, f"m{i}")
        assert mgr.log_is_full(pe)
        mgr.store_checkpoint(pe, {"s": 1}, at=0.5, overhead_s=0.001)
        assert not mgr.log_is_full(pe)
        assert mgr.replay_log(pe) == []
        assert pe.checkpoints == 1
        assert mgr.checkpoint_of(pe) == {"s": 1}

    def test_replay_log_survives_replay(self):
        # A second crash before the next checkpoint replays the same
        # prefix, so reading the log must not consume it.
        mgr = RecoveryManager(RecoveryConfig())
        pe = make_pe()
        mgr.register(pe)
        mgr.log_delivery(pe, "a")
        mgr.log_delivery(pe, "b")
        assert mgr.replay_log(pe) == ["a", "b"]
        assert mgr.replay_log(pe) == ["a", "b"]

    def test_held_messages_drain_once(self):
        mgr = RecoveryManager(RecoveryConfig())
        pe = make_pe()
        mgr.register(pe)
        mgr.hold(pe, "x")
        mgr.hold(pe, "y")
        assert mgr.metrics.held_messages == 2
        assert mgr.drain_held(pe) == ["x", "y"]
        assert mgr.drain_held(pe) == []


class TestCrashAccounting:
    def test_crash_and_recovery_latency(self):
        mgr = RecoveryManager(RecoveryConfig())
        pe = make_pe()
        mgr.register(pe)
        mgr.on_crash(pe, at=1.0, downtime=0.005)
        assert pe.crashes == 1
        assert pe.downtime == pytest.approx(0.005)
        latency = mgr.on_recovered(pe, caught_up_at=1.02, replayed=7)
        assert latency == pytest.approx(0.02)
        assert mgr.metrics.replayed_tuples == 7
        assert mgr.metrics.recovery_latencies == [pytest.approx(0.02)]

    def test_recovered_without_crash_is_noop(self):
        mgr = RecoveryManager(RecoveryConfig())
        pe = make_pe()
        mgr.register(pe)
        assert mgr.on_recovered(pe, caught_up_at=1.0, replayed=0) is None
        assert mgr.metrics.recovery_latencies == []


class TestAdmit:
    def test_first_admission_then_duplicate(self):
        mgr = RecoveryManager(RecoveryConfig())
        pe = make_pe()
        mgr.register(pe)
        payload = {"tid": 4, "matches": [1, 2]}
        assert mgr.admit(pe, "result", payload)
        assert not mgr.admit(pe, "result", {"tid": 4, "matches": [1, 2]})
        assert mgr.metrics.records_admitted == 1
        assert mgr.metrics.duplicates_dropped == 1
        assert mgr.metrics.divergent_records == 0

    def test_divergent_duplicate_counted(self):
        mgr = RecoveryManager(RecoveryConfig())
        pe = make_pe()
        mgr.register(pe)
        mgr.admit(pe, "result", {"tid": 4, "matches": [1]})
        assert not mgr.admit(pe, "result", {"tid": 4, "matches": [1, 9]})
        assert mgr.metrics.divergent_records == 1

    def test_keys_scoped_by_pe_and_name(self):
        mgr = RecoveryManager(RecoveryConfig())
        a, b = make_pe(index=0), make_pe(index=1)
        mgr.register(a)
        mgr.register(b)
        payload = {"tid": 1, "matches": []}
        assert mgr.admit(a, "result", payload)
        assert mgr.admit(b, "result", dict(payload))
        assert mgr.admit(a, "other", dict(payload))

    def test_non_tid_payload_keyed_by_repr(self):
        mgr = RecoveryManager(RecoveryConfig())
        pe = make_pe()
        mgr.register(pe)
        assert mgr.admit(pe, "note", "hello")
        assert not mgr.admit(pe, "note", "hello")
        assert mgr.admit(pe, "note", "world")


class TestEngineWiring:
    def _topo(self):
        topo = Topology()
        topo.add_spout("source", iter([(0.0, 1)]))
        topo.add_bolt(
            "sink", _Noop, parallelism=1,
            inputs=[("source", Grouping.shuffle())],
        )
        return topo

    def test_protecting_noncheckpointable_component_rejected(self):
        with pytest.raises(ValueError, match="not checkpointable"):
            Engine(
                self._topo(),
                recovery=RecoveryConfig(components=["sink"]),
            )

    def test_faults_imply_default_recovery(self):
        engine = Engine(self._topo(), faults=FaultConfig())
        assert engine.recovery_manager is not None
        assert engine.fault_plan is not None

    def test_noncheckpointable_components_skipped_by_default(self):
        engine = Engine(self._topo(), recovery=RecoveryConfig())
        assert engine.recovery_manager.protected_pes() == []

    def test_fault_seed_overrides_loss_seed(self):
        engine = Engine(self._topo(), loss_seed=1, fault_seed=99)
        assert engine.fault_seed == 99
        assert engine._loss_rng.random() == __import__("random").Random(99).random()


class TestReplayDeduper:
    def _deduper(self):
        from repro.dspe import ReplayDeduper

        return ReplayDeduper()

    def test_first_occurrence_admitted_second_dropped(self):
        d = self._deduper()
        assert d.admit(("joiner", 0, 3), "result", {"tid": 9})
        assert not d.admit(("joiner", 0, 3), "result", {"tid": 9})
        assert d.admitted == 1
        assert d.duplicates == 1
        assert d.divergent == 0

    def test_payload_mismatch_counts_divergent(self):
        d = self._deduper()
        d.admit(("joiner", 0, 3), "result", {"tid": 9, "v": 1})
        assert not d.admit(("joiner", 0, 3), "result", {"tid": 9, "v": 2})
        assert d.divergent == 1

    def test_seed_backfills_without_counting(self):
        d = self._deduper()
        d.seed(("joiner", 0, 3), "result", {"tid": 9})
        assert d.admitted == 0
        assert not d.admit(("joiner", 0, 3), "result", {"tid": 9})
        assert d.duplicates == 1


class TestReplayLog:
    def _log(self, capacity=4):
        from repro.dspe import ReplayLog

        return ReplayLog(capacity)

    def test_append_and_replay_order(self):
        log = self._log()
        for seq in range(3):
            log.append(seq, f"item{seq}")
        assert [seq for seq, _ in log.replay_items()] == [0, 1, 2]

    def test_is_full_at_capacity(self):
        log = self._log(capacity=2)
        log.append(0, "a")
        assert not log.is_full
        log.append(1, "b")
        assert log.is_full

    def test_truncate_through_drops_covered_prefix(self):
        log = self._log()
        for seq in range(4):
            log.append(seq, seq)
        dropped = log.truncate_through(1)
        assert dropped == 2
        assert [seq for seq, _ in log.replay_items()] == [2, 3]
        assert log.truncated_through == 1
        # Truncating behind the high-water mark is a no-op.
        assert log.truncate_through(0) == 0
        assert [seq for seq, _ in log.replay_items()] == [2, 3]
