"""PE accounting: utilization, queue waits, core contention."""

import pytest

from repro.dspe import Engine, Grouping, Operator, ProcessingElement, Topology


class FixedCost(Operator):
    def __init__(self, cost):
        self.cost = cost

    def process(self, payload, ctx):
        ctx.charge(self.cost)


def burst_topology(n, factory, parallelism=1):
    topo = Topology()
    topo.add_spout("src", ((0.0, i) for i in range(n)))
    topo.add_bolt(
        "work", factory, parallelism=parallelism,
        inputs=[("src", Grouping.round_robin())],
    )
    return topo


class TestWaitAccounting:
    def test_burst_accumulates_wait(self):
        engine = Engine(
            burst_topology(10, lambda: FixedCost(0.01)),
            net_delay_local=0.0,
            net_delay_remote=0.0,
        )
        result = engine.run()
        pe = result.pes_of("work")[0]
        # Tuple k waits k * 0.01s: total = 0.45s, max = 0.09s.
        assert pe.wait_time == pytest.approx(0.45, rel=0.01)
        assert pe.wait_max == pytest.approx(0.09, rel=0.01)
        assert pe.mean_wait() == pytest.approx(0.045, rel=0.01)

    def test_idle_pe_never_waits(self):
        engine = Engine(burst_topology(0, lambda: FixedCost(0.01)))
        result = engine.run()
        pe = result.pes_of("work")[0]
        assert pe.wait_time == 0.0
        assert pe.mean_wait() == 0.0

    def test_utilization(self):
        engine = Engine(burst_topology(10, lambda: FixedCost(0.01)))
        result = engine.run()
        pe = result.pes_of("work")[0]
        assert pe.utilization(result.sim_end) == pytest.approx(1.0, rel=0.05)
        assert pe.utilization(0) == 0.0


class TestZeroProcessedGuards:
    """Direct-unit guards: a PE that served nothing reports idle."""

    def _pe(self):
        return ProcessingElement("work", 0, 0, FixedCost(0.01))

    def test_mean_wait_zero_when_nothing_processed(self):
        pe = self._pe()
        assert pe.mean_wait() == 0.0
        # Even with stale accumulated wait (e.g. from held redeliveries
        # that never got served), processed == 0 must yield 0.0, not a
        # division error or a garbage ratio.
        pe.wait_time = 1.5
        assert pe.mean_wait() == 0.0

    def test_utilization_zero_when_nothing_processed(self):
        pe = self._pe()
        assert pe.utilization(10.0) == 0.0
        assert pe.utilization(0.0) == 0.0
        assert pe.utilization(-1.0) == 0.0

    def test_utilization_counts_busy_time_without_messages(self):
        # Checkpoint overhead charges busy_time without bumping
        # processed; that time is real occupancy, not idleness.
        pe = self._pe()
        pe.busy_time = 0.5
        assert pe.utilization(10.0) == pytest.approx(0.05)


class TestCoreContention:
    def test_single_core_serializes_parallel_pes(self):
        # 4 PEs on one 1-core node: their service must serialize.
        engine = Engine(
            burst_topology(8, lambda: FixedCost(0.01), parallelism=4),
            num_nodes=1,
            cores_per_node=1,
            net_delay_local=0.0,
            net_delay_remote=0.0,
        )
        assert engine.run().sim_end == pytest.approx(0.08, rel=0.02)

    def test_plenty_of_cores_restore_parallelism(self):
        engine = Engine(
            burst_topology(8, lambda: FixedCost(0.01), parallelism=4),
            num_nodes=1,
            cores_per_node=8,
            net_delay_local=0.0,
            net_delay_remote=0.0,
        )
        assert engine.run().sim_end == pytest.approx(0.02, rel=0.05)

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            Engine(burst_topology(1, lambda: FixedCost(0.01)), cores_per_node=0)


class TestChargeValidation:
    def test_negative_charge_rejected(self):
        class BadCharge(Operator):
            def process(self, payload, ctx):
                ctx.charge(-1.0)

        engine = Engine(burst_topology(1, BadCharge))
        with pytest.raises(ValueError):
            engine.run()

    def test_time_scale_multiplies_measured_cost(self):
        import time

        class Busy(Operator):
            def process(self, payload, ctx):
                t0 = time.perf_counter()
                while time.perf_counter() - t0 < 0.002:
                    pass

        slow = Engine(
            burst_topology(3, Busy), time_scale=100.0,
            net_delay_local=0.0, net_delay_remote=0.0,
        ).run()
        fast = Engine(
            burst_topology(3, Busy), time_scale=1.0,
            net_delay_local=0.0, net_delay_remote=0.0,
        ).run()
        assert slow.sim_end > 10 * fast.sim_end
