"""Overload protection: bounded queues, backpressure, shedding, retries.

Unit-level coverage of :mod:`repro.dspe.flow` plus small engine runs
that exercise each full-queue policy and the poison-tuple quarantine
path in isolation (the integration suite checks fingerprint equivalence
against the unmanaged engine).
"""

import random

import pytest

from repro.dspe import (
    Engine,
    FlowConfig,
    Grouping,
    Operator,
    RetryPolicy,
    Topology,
)


class Sink(Operator):
    def process(self, payload, ctx):
        ctx.record("out", payload)


class SlowSink(Operator):
    def __init__(self, cost=0.01):
        self.cost = cost

    def process(self, payload, ctx):
        ctx.charge(self.cost)
        ctx.record("out", payload)


def burst_topology(n, factory, at=0.0):
    """n tuples all offered at the same instant (the overload shape)."""
    topo = Topology()
    topo.add_spout("src", ((at, i) for i in range(n)))
    topo.add_bolt("work", factory, inputs=[("src", Grouping.round_robin())])
    return topo


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base=0.01, factor=2.0, max_delay=0.05, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(a, rng, 0.01) for a in range(1, 6)]
        assert delays == pytest.approx([0.01, 0.02, 0.04, 0.05, 0.05])

    def test_base_none_inherits_engine_default(self):
        policy = RetryPolicy(base=None, factor=2.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(1, rng, 0.03) == pytest.approx(0.03)
        assert policy.delay(2, rng, 0.03) == pytest.approx(0.06)

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(base=0.01, jitter=0.25)
        a = [policy.delay(k, random.Random(7), 0.01) for k in range(1, 5)]
        b = [policy.delay(k, random.Random(7), 0.01) for k in range(1, 5)]
        c = [policy.delay(k, random.Random(8), 0.01) for k in range(1, 5)]
        assert a == b
        assert a != c
        # Jitter only ever lengthens the delay, bounded by the fraction.
        for k, d in enumerate(a, start=1):
            nominal = min(0.01 * 2.0 ** (k - 1), policy.max_delay)
            assert nominal <= d < nominal * 1.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0},
            {"base": -1.0},
            {"factor": 0.5},
            {"max_delay": 0.0},
            {"jitter": -0.1},
            {"jitter": 1.0},
            {"max_attempts": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0, random.Random(0), 0.01)


# ----------------------------------------------------------------------
# FlowConfig
# ----------------------------------------------------------------------
class TestFlowConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"policy": "panic"},
            {"drop": "random"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FlowConfig(**kwargs)

    def test_release_depth_is_half_capacity(self):
        assert FlowConfig(queue_capacity=24).release_depth == 12
        assert FlowConfig(queue_capacity=1).release_depth == 0
        assert FlowConfig().release_depth == 0


# ----------------------------------------------------------------------
# block policy
# ----------------------------------------------------------------------
class TestBlockPolicy:
    def test_nothing_lost_and_wait_bounded(self):
        cost, cap, n = 0.01, 4, 20
        result = Engine(
            burst_topology(n, lambda: SlowSink(cost)),
            flow=FlowConfig(queue_capacity=cap, policy="block"),
            net_delay_local=0.0,
            net_delay_remote=0.0,
        ).run()
        outs = [r.payload for r in result.records_named("out")]
        assert outs == list(range(n))  # everything, in order
        pe = result.pes_of("work")[0]
        # Admission control bounds the queue: nothing waits longer than
        # a full queue's worth of service (small slack for the zero-cost
        # spout hop).
        assert pe.wait_max <= cap * cost * 1.01
        assert pe.queue_peak <= cap
        metrics = result.flow.metrics
        assert metrics.total_shed_tuples() == 0
        assert metrics.total_blocks() > 0
        assert metrics.total_blocked_s() > 0.0

    def test_unbounded_capacity_never_blocks(self):
        result = Engine(
            burst_topology(10, lambda: SlowSink(0.01)),
            flow=FlowConfig(queue_capacity=None, policy="block"),
        ).run()
        assert len(result.records_named("out")) == 10
        assert result.flow.metrics.total_blocks() == 0


# ----------------------------------------------------------------------
# shed policy
# ----------------------------------------------------------------------
class TestShedPolicy:
    def _run(self, drop, n=10, cap=2):
        # Default (nonzero) net delays: the whole burst arrives at the
        # sink in one instant, before its first service fires, so which
        # tuples survive is deterministic.
        return Engine(
            burst_topology(n, lambda: SlowSink(0.01)),
            flow=FlowConfig(queue_capacity=cap, policy="shed", drop=drop),
        ).run()

    def test_drop_newest_keeps_head_of_burst(self):
        result = self._run("newest")
        outs = [r.payload for r in result.records_named("out")]
        # The burst lands at once: the first `cap` fill the queue, the
        # rest are dropped on arrival.
        assert outs == [0, 1]
        assert result.flow.metrics.total_shed_tuples() == 8

    def test_drop_oldest_keeps_tail_of_burst(self):
        result = self._run("oldest")
        outs = [r.payload for r in result.records_named("out")]
        assert outs == [8, 9]
        assert result.flow.metrics.total_shed_tuples() == 8

    def test_shed_records_match_metrics_exactly(self):
        result = self._run("newest", n=17, cap=3)
        sheds = result.records_named("shed")
        metrics = result.flow.metrics
        assert len(sheds) == sum(metrics.shed_messages.values())
        assert (
            sum(r.payload["tuples"] for r in sheds)
            == metrics.total_shed_tuples()
        )
        # Conservation: every offered tuple was either served or shed.
        served = len(result.records_named("out"))
        assert served + metrics.total_shed_tuples() == 17

    def test_no_shedding_below_capacity(self):
        result = self._run("newest", n=2, cap=4)
        assert len(result.records_named("out")) == 2
        assert result.flow.metrics.total_shed_tuples() == 0
        assert not result.records_named("shed")


# ----------------------------------------------------------------------
# degrade policy (pressure signal)
# ----------------------------------------------------------------------
class PressureProbe(Operator):
    def process(self, payload, ctx):
        ctx.charge(0.01)
        ctx.record("out", {"payload": payload, "pressure": ctx.pressure})


class TestDegradePolicy:
    def test_pressure_latch_with_hysteresis(self):
        n, cap = 20, 4
        result = Engine(
            burst_topology(n, PressureProbe),
            flow=FlowConfig(queue_capacity=cap, policy="degrade"),
            net_delay_local=0.0,
            net_delay_remote=0.0,
        ).run()
        outs = [r.payload for r in result.records_named("out")]
        assert [o["payload"] for o in outs] == list(range(n))  # no loss
        flags = [o["pressure"] for o in outs]
        # The burst fills the bounded queue, so pressure rises...
        assert any(flags)
        # ... and clears only once the backlog drains to the release
        # depth: the tail of the run is served unpressured.
        assert flags[-1] is False
        metrics = result.flow.metrics
        # Admission control is the same as under block: the queue never
        # exceeds capacity and the excess burst stalls upstream instead.
        assert metrics.high_watermarks["work[0]"] <= cap
        assert sum(metrics.queue_full_events.values()) >= 1
        assert metrics.total_blocks() > 0
        assert metrics.total_shed_tuples() == 0

    def test_pressure_flag_false_without_flow_layer(self):
        result = Engine(burst_topology(5, PressureProbe)).run()
        assert all(
            o.payload["pressure"] is False for o in result.records_named("out")
        )


# ----------------------------------------------------------------------
# poison tuples -> retry -> quarantine
# ----------------------------------------------------------------------
class Poisonous(Operator):
    """Raises on one payload, forever; processes everything else."""

    def __init__(self, poison=3):
        self.poison = poison

    def process(self, payload, ctx):
        ctx.charge(0.001)
        if payload == self.poison:
            raise RuntimeError(f"poison payload {payload}")
        ctx.record("out", payload)


class TestPoisonQuarantine:
    def _run(self, max_attempts=3, n=8):
        return Engine(
            burst_topology(n, Poisonous),
            flow=FlowConfig(
                queue_capacity=4,
                policy="block",
                retry=RetryPolicy(
                    base=0.005, jitter=0.0, max_attempts=max_attempts
                ),
            ),
        ).run()

    def test_poison_is_quarantined_and_pe_survives(self):
        result = self._run(max_attempts=3)
        outs = sorted(r.payload for r in result.records_named("out"))
        assert outs == [0, 1, 2, 4, 5, 6, 7]  # everything but the poison
        assert len(result.dead_letters) == 1
        entry = result.dead_letters[0]
        assert entry.pe == "work[0]"
        assert entry.attempts == 3
        assert "poison payload 3" in entry.error
        pe = result.pes_of("work")[0]
        assert pe.crashes == 0  # quarantine, not a crash-loop
        metrics = result.flow.metrics
        assert metrics.retries == 2  # attempts 1 and 2 were retried
        assert metrics.quarantined_messages == 1

    def test_quarantine_record_emitted(self):
        result = self._run(max_attempts=2)
        records = result.records_named("quarantined")
        assert len(records) == 1
        assert records[0].payload["attempts"] == 2

    def test_max_attempts_one_quarantines_immediately(self):
        result = self._run(max_attempts=1)
        assert result.flow.metrics.retries == 0
        assert len(result.dead_letters) == 1

    def test_failure_without_flow_layer_still_raises(self):
        # The legacy contract: no flow layer means operator exceptions
        # propagate (the recovery layer or the caller deals with them).
        with pytest.raises(RuntimeError, match="poison"):
            Engine(burst_topology(5, Poisonous)).run()


# ----------------------------------------------------------------------
# spout redelivery cap
# ----------------------------------------------------------------------
class TestRedeliveryCap:
    def test_exhausted_redeliveries_surface_on_result(self):
        # With max_redeliveries=0 every lost delivery is immediately
        # exhausted: the tuple is dropped and counted, never retried.
        engine = Engine(
            burst_topology(300, Sink),
            spout_loss_rate=0.2,
            loss_seed=3,
            max_redeliveries=0,
        )
        result = engine.run()
        assert result.redeliveries_exhausted > 0
        assert result.redeliveries == 0
        served = len(result.records_named("out"))
        dropped = len(result.records_named("redelivery_exhausted"))
        assert dropped == result.redeliveries_exhausted
        assert served + dropped == 300

    def test_exhausted_drops_dead_letter_with_flow(self):
        engine = Engine(
            burst_topology(300, Sink),
            spout_loss_rate=0.2,
            loss_seed=3,
            max_redeliveries=0,
            flow=FlowConfig(),
        )
        result = engine.run()
        assert result.redeliveries_exhausted > 0
        assert len(result.dead_letters) == result.redeliveries_exhausted
        assert all(d.pe == "source:src" for d in result.dead_letters)

    def test_generous_cap_matches_uncapped_results(self):
        # The default cap (100) is far above what 20% loss needs, so the
        # run is lossless and the exhausted counter stays zero.
        engine = Engine(
            burst_topology(300, Sink), spout_loss_rate=0.2, loss_seed=3
        )
        result = engine.run()
        assert result.redeliveries_exhausted == 0
        assert len(result.records_named("out")) == 300

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            Engine(burst_topology(1, Sink), max_redeliveries=-1)
