"""Discrete-event engine: routing, queueing, latency, service charging."""

import pytest

from repro.dspe import Engine, Grouping, Operator, RawTuple, RouterOperator, Topology


class Passthrough(Operator):
    def process(self, payload, ctx):
        ctx.emit(payload)


class FixedCost(Operator):
    def __init__(self, cost):
        self.cost = cost

    def process(self, payload, ctx):
        ctx.charge(self.cost)
        ctx.emit(payload)


class Sink(Operator):
    def process(self, payload, ctx):
        ctx.record("out", payload)


def simple_source(n, rate=1000.0):
    return ((i / rate, i) for i in range(n))


def build_pipeline(source, middle_factory, middle_par=1):
    topo = Topology()
    topo.add_spout("src", source)
    topo.add_bolt(
        "mid", middle_factory, parallelism=middle_par,
        inputs=[("src", Grouping.round_robin())],
    )
    topo.add_bolt(
        "sink", Sink, parallelism=1, inputs=[("mid", Grouping.round_robin())]
    )
    return topo


class TestBasics:
    def test_all_tuples_delivered(self):
        topo = build_pipeline(simple_source(50), Passthrough)
        result = Engine(topo).run()
        outs = sorted(r.payload for r in result.records_named("out"))
        assert outs == list(range(50))

    def test_validation_rejects_unknown_source(self):
        topo = Topology()
        topo.add_spout("src", [])
        topo.add_bolt("b", Passthrough, inputs=[("ghost", Grouping.broadcast())])
        with pytest.raises(ValueError):
            Engine(topo)

    def test_duplicate_names_rejected(self):
        topo = Topology()
        topo.add_spout("x", [])
        with pytest.raises(ValueError):
            topo.add_bolt("x", Passthrough, inputs=[])

    def test_topology_needs_spout(self):
        topo = Topology()
        topo.add_bolt("only", Passthrough, inputs=[])
        with pytest.raises(ValueError):
            Engine(topo)

    def test_empty_source_terminates(self):
        topo = build_pipeline(iter([]), Passthrough)
        result = Engine(topo).run()
        assert result.records == []


class TestQueueing:
    def test_fixed_cost_serializes_single_pe(self):
        # 10 tuples, 10ms each, all arriving at t=0 -> finish near 0.1s.
        topo = build_pipeline(((0.0, i) for i in range(10)), lambda: FixedCost(0.01))
        result = Engine(topo, net_delay_local=0.0, net_delay_remote=0.0).run()
        assert result.sim_end == pytest.approx(0.1, rel=0.01)

    def test_parallelism_divides_backlog(self):
        topo = build_pipeline(
            ((0.0, i) for i in range(10)), lambda: FixedCost(0.01), middle_par=2
        )
        result = Engine(topo, net_delay_local=0.0, net_delay_remote=0.0).run()
        assert result.sim_end == pytest.approx(0.05, rel=0.02)

    def test_event_latency_includes_queueing(self):
        topo = build_pipeline(((0.0, i) for i in range(5)), lambda: FixedCost(0.01))
        result = Engine(topo, net_delay_local=0.0, net_delay_remote=0.0).run()
        latencies = sorted(r.event_latency for r in result.records_named("out"))
        # The last tuple waits for the first four: ~0.05s.
        assert latencies[-1] == pytest.approx(0.05, rel=0.05)

    def test_pe_stats_accumulate(self):
        topo = build_pipeline(simple_source(20), lambda: FixedCost(0.001))
        result = Engine(topo).run()
        mid = result.pes_of("mid")[0]
        assert mid.processed == 20
        assert mid.busy_time == pytest.approx(0.02, rel=0.01)

    def test_event_budget_guard(self):
        class Echo(Operator):
            def process(self, payload, ctx):
                ctx.emit(payload)  # feeds back forever

        topo = Topology()
        topo.add_spout("src", [(0.0, 1)])
        topo.add_bolt("loop", Echo, inputs=[("src", Grouping.broadcast())])
        topo.add_bolt("loop2", Echo, inputs=[("loop", Grouping.broadcast())])
        # loop2 feeds loop back -> infinite message cycle.
        topo.bolts["loop"].inputs.append(
            type(topo.bolts["loop2"].inputs[0])("loop2", Grouping.broadcast(), "default")
        )
        engine = Engine(topo, max_events=1000)
        with pytest.raises(RuntimeError):
            engine.run()


class TestNetworkDelays:
    def test_remote_delay_slower_than_local(self):
        def run(nodes):
            topo = build_pipeline([(0.0, 1)], Passthrough)
            return Engine(
                topo,
                num_nodes=nodes,
                net_delay_local=0.0001,
                net_delay_remote=0.01,
            ).run().sim_end

        # With one node, all hops are local and cheap.
        assert run(1) < run(3)


class TestRouter:
    def test_router_assigns_monotone_ids(self):
        raws = [(i * 0.001, RawTuple("R", (float(i),))) for i in range(20)]
        topo = Topology()
        topo.add_spout("src", raws)
        topo.add_bolt("router", RouterOperator, inputs=[("src", Grouping.shuffle())])
        topo.add_bolt("sink", Sink, inputs=[("router", Grouping.broadcast())])
        result = Engine(topo).run()
        tids = [r.payload.tid for r in result.records_named("out")]
        assert tids == list(range(20))
        streams = {r.payload.stream for r in result.records_named("out")}
        assert streams == {"R"}

    def test_marks_propagate(self):
        class Marker(Operator):
            def process(self, payload, ctx):
                ctx.mark("joiner")
                ctx.emit(payload)

        topo = Topology()
        topo.add_spout("src", [(0.0, 1)])
        topo.add_bolt("m", Marker, inputs=[("src", Grouping.broadcast())])
        topo.add_bolt("sink", Sink, inputs=[("m", Grouping.broadcast())])
        result = Engine(topo).run()
        record = result.records_named("out")[0]
        assert "joiner" in record.marks
        assert record.processing_latency() <= record.event_latency


class TestFlushDrain:
    def test_flush_called_at_end_of_stream(self):
        class Buffering(Operator):
            def __init__(self):
                self.buffer = []

            def process(self, payload, ctx):
                self.buffer.append(payload)

            def flush(self, ctx):
                while self.buffer:
                    ctx.emit(self.buffer.pop(0))

        topo = build_pipeline(simple_source(7), Buffering)
        result = Engine(topo).run()
        outs = sorted(r.payload for r in result.records_named("out"))
        assert outs == list(range(7))

    def test_flush_cascades_through_pipeline(self):
        # A flush emission must itself be delivered and may trigger the
        # next stage's flush in a later drain pass.
        class BufferAll(Operator):
            def __init__(self):
                self.buffer = []

            def process(self, payload, ctx):
                self.buffer.append(payload)

            def flush(self, ctx):
                for p in self.buffer:
                    ctx.emit(p)
                self.buffer = []

        topo = Topology()
        topo.add_spout("src", simple_source(5))
        topo.add_bolt("a", BufferAll, inputs=[("src", Grouping.broadcast())])
        topo.add_bolt("b", BufferAll, inputs=[("a", Grouping.broadcast())])
        topo.add_bolt("sink", Sink, inputs=[("b", Grouping.broadcast())])
        result = Engine(topo).run()
        outs = sorted(r.payload for r in result.records_named("out"))
        assert outs == list(range(5))

    def test_flush_default_is_noop(self):
        topo = build_pipeline(simple_source(3), Passthrough)
        result = Engine(topo).run()
        assert len(result.records_named("out")) == 3
