"""Distributed cache staleness and window-state management strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dspe import (
    CachedStateManager,
    CacheClient,
    DistributedCache,
    RoundRobinStateManager,
)


class TestDistributedCache:
    def test_versioned_reads(self):
        cache = DistributedCache()
        cache.put("k", 1, at_time=0.0)
        cache.put("k", 2, at_time=1.0)
        cache.put("k", 3, at_time=2.0)
        assert cache.get_as_of("k", 0.5) == 1
        assert cache.get_as_of("k", 1.0) == 2
        assert cache.get_as_of("k", 99.0) == 3
        assert cache.latest("k") == 3

    def test_read_before_first_write(self):
        cache = DistributedCache()
        cache.put("k", 1, at_time=5.0)
        assert cache.get_as_of("k", 4.0) is None

    def test_missing_key(self):
        cache = DistributedCache()
        assert cache.get_as_of("nope", 1.0) is None
        assert cache.latest("nope") is None

    def test_rejects_time_travel(self):
        cache = DistributedCache()
        cache.put("k", 1, at_time=5.0)
        with pytest.raises(ValueError):
            cache.put("k", 2, at_time=4.0)

    def test_history_pruned(self):
        cache = DistributedCache(history_limit=10)
        for i in range(100):
            cache.put("k", i, at_time=float(i))
        assert cache.latest("k") == 99


class TestCacheClient:
    def test_refresh_interval(self):
        cache = DistributedCache()
        client = CacheClient(cache, sync_interval=1.0)
        cache.put("k", 1, at_time=0.0)
        assert client.read("k", 0.0) == 1
        cache.put("k", 2, at_time=0.5)
        # Local copy still serves the stale value inside the interval.
        assert client.read("k", 0.9) == 1
        # Past the interval, the client re-syncs.
        assert client.read("k", 1.1) == 2

    def test_sync_counter(self):
        cache = DistributedCache()
        client = CacheClient(cache, sync_interval=1.0)
        cache.put("k", 1, at_time=0.0)
        client.read("k", 0.0)
        client.read("k", 0.5)
        client.read("k", 2.0)
        assert client.syncs == 2


class TestStateManagers:
    def test_round_robin_lags_by_merge_interval(self):
        mgr = RoundRobinStateManager(num_pes=4)
        for i in range(95):
            mgr.on_tuple(i * 0.001)
        # No merge batch shipped yet: followers know nothing.
        assert mgr.local_count(0, 0.1) == 95
        assert mgr.local_count(1, 0.1) == 0
        assert mgr.max_divergence(0.1) == 95
        mgr.on_merge_batch(1, 50, 0.1)
        assert mgr.local_count(1, 0.1) == 50
        assert mgr.max_divergence(0.1) == 45

    def test_cached_manager_bounded_staleness(self):
        mgr = CachedStateManager(num_pes=4, sync_interval=0.01)
        for i in range(100):
            mgr.on_tuple(i * 0.001)
        # At time 0.1 every follower can sync a recent count.
        for pe in range(1, 4):
            assert mgr.local_count(pe, 0.1) == 100
        assert mgr.max_divergence(0.1) == 0

    def test_cached_manager_staleness_within_interval(self):
        mgr = CachedStateManager(num_pes=2, sync_interval=1.0)
        mgr.on_tuple(0.0)
        assert mgr.local_count(1, 0.0) == 1
        for i in range(1, 50):
            mgr.on_tuple(i * 0.001)
        # Follower synced at t=0 and stays stale until t=1.
        assert mgr.local_count(1, 0.5) == 1
        assert mgr.max_divergence(0.5) == 49

    def test_divergence_shapes_rr_vs_dc(self):
        """The Figure 19 claim: cache sync diverges less than round-robin."""
        rr = RoundRobinStateManager(num_pes=4)
        dc = CachedStateManager(num_pes=4, sync_interval=0.005)
        merge_every = 200
        rr_div = []
        dc_div = []
        for i in range(1000):
            now = i * 0.001
            rr.on_tuple(now)
            dc.on_tuple(now)
            if (i + 1) % merge_every == 0:
                rr.on_merge_batch((i // merge_every) % 4, merge_every, now)
            if i % 50 == 0:
                rr_div.append(rr.max_divergence(now))
                dc_div.append(dc.max_divergence(now))
        assert sum(dc_div) < sum(rr_div)

    def test_rejects_zero_pes(self):
        with pytest.raises(ValueError):
            RoundRobinStateManager(0)


class TestTombstones:
    def test_delete_is_versioned(self):
        cache = DistributedCache()
        cache.put("k", 1, at_time=0.0)
        cache.delete("k", at_time=1.0)
        # As-of reads before the deletion still see the old value.
        assert cache.get_as_of("k", 0.5) == 1
        assert cache.get_as_of("k", 2.0) is None
        assert cache.latest("k") is None

    def test_snapshot_excludes_tombstones_and_future_keys(self):
        cache = DistributedCache()
        cache.put("a", 1, at_time=0.0)
        cache.put("b", 2, at_time=0.0)
        cache.delete("b", at_time=1.0)
        cache.put("c", 3, at_time=5.0)
        assert cache.snapshot_as_of(2.0) == {"a": 1}


class TestClientEviction:
    def test_refresh_evicts_deleted_keys(self):
        # Regression: _refresh used to only overwrite keys still present
        # in the cache, so a deleted key was served stale forever.
        cache = DistributedCache()
        client = CacheClient(cache, sync_interval=1.0)
        cache.put("gone", 1, at_time=0.0)
        cache.put("kept", 2, at_time=0.0)
        assert client.read("gone", 0.0) == 1
        cache.delete("gone", at_time=0.5)
        # Stale inside the sync interval — bounded staleness, not a bug.
        assert client.read("gone", 0.9) == 1
        # Evicted at the next boundary.
        assert client.read("gone", 1.2) is None
        assert client.read("kept", 1.3) == 2
        assert client.evictions == 1

    def test_on_sync_callback_reports_evictions(self):
        calls = []
        cache = DistributedCache()
        client = CacheClient(
            cache, sync_interval=1.0, on_sync=lambda *a: calls.append(a)
        )
        cache.put("k", 1, at_time=0.0)
        client.read("k", 0.0)
        cache.delete("k", at_time=0.5)
        client.read("k", 1.5)
        assert calls == [(0.0, 0, 1), (1.0, 1, 0)]


class TestRetentionFloor:
    def test_trim_keeps_partition_clamped_version(self):
        # Regression: trimming used to keep only the newest half of a
        # key's history, so a reader clamped to a long partition's start
        # found nothing at all (None) instead of the partition-start
        # state.
        cache = DistributedCache(history_limit=8)
        cache.put("k", "early", at_time=1.0)
        cache.partitions = [(2.0, 500.0)]
        for i in range(100):
            cache.put("k", i, at_time=3.0 + i)
        assert cache.get_as_of("k", 10.0) == "early"

    def test_trim_keeps_client_sync_version(self):
        cache = DistributedCache(history_limit=8)
        client = CacheClient(cache, sync_interval=100.0)
        cache.put("k", "synced", at_time=0.0)
        assert client.read("k", 0.0) == "synced"
        for i in range(50):
            cache.put("k", i, at_time=1.0 + i)
        # The client's boundary is still 0.0; the version it synced must
        # survive trimming so a re-read as of that boundary agrees.
        assert cache.get_as_of("k", 0.0) == "synced"
        assert client.read("k", 50.0) == "synced"

    def test_trim_still_bounds_history_without_laggards(self):
        cache = DistributedCache(history_limit=10)
        for i in range(100):
            cache.put("k", i, at_time=float(i))
        assert cache.trims > 0
        assert cache.latest("k") == 99

    def test_retention_floor_sources(self):
        cache = DistributedCache()
        assert cache.retention_floor(0.0) is None
        cache.partitions = [(3.0, 10.0)]
        assert cache.retention_floor(5.0) == 3.0
        # Healed partitions stop pinning history.
        assert cache.retention_floor(11.0) is None
        client = CacheClient(cache, sync_interval=1.0)
        # An unsynced client contributes no floor.
        assert cache.retention_floor(11.0) is None
        cache.put("k", 1, at_time=0.0)
        client.read("k", 2.0)
        assert cache.retention_floor(11.0) == 2.0


class TestStalenessProperty:
    @given(
        ops=st.lists(
            st.tuples(
                st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.booleans(),
            ),
            min_size=2,
            max_size=40,
        ),
        sync_interval=st.floats(min_value=0.05, max_value=3.0),
    )
    @settings(deadline=None, max_examples=60)
    def test_read_never_newer_than_sync_nor_older_than_retention(
        self, ops, sync_interval
    ):
        """Reads honor both staleness bounds (Section 4.2).

        A client read is (a) never newer than its last sync boundary and
        (b) never older than the retention guarantee: it is exactly the
        newest value written at or before that boundary.  Values are the
        write times themselves so both bounds are directly checkable.
        """
        cache = DistributedCache()
        client = CacheClient(cache, sync_interval=sync_interval)
        written = []
        # Reference model: a refresh snapshots the writes *visible at
        # the refresh moment*; a write landing after a sync at the same
        # boundary stays invisible until the next boundary.
        model_sync = float("-inf")
        model_value = None
        for t, is_write in sorted(set(ops)):
            if is_write:
                cache.put("k", t, at_time=t)
                written.append(t)
            else:
                boundary = (t // sync_interval) * sync_interval
                if boundary > model_sync:
                    model_sync = boundary
                    model_value = max(
                        (w for w in written if w <= boundary), default=None
                    )
                value = client.read("k", t)
                assert client.last_sync == model_sync
                assert value == model_value
                if value is not None:
                    # Never newer than the last sync boundary.
                    assert value <= client.last_sync
