"""Distributed cache staleness and window-state management strategies."""

import pytest

from repro.dspe import (
    CachedStateManager,
    CacheClient,
    DistributedCache,
    RoundRobinStateManager,
)


class TestDistributedCache:
    def test_versioned_reads(self):
        cache = DistributedCache()
        cache.put("k", 1, at_time=0.0)
        cache.put("k", 2, at_time=1.0)
        cache.put("k", 3, at_time=2.0)
        assert cache.get_as_of("k", 0.5) == 1
        assert cache.get_as_of("k", 1.0) == 2
        assert cache.get_as_of("k", 99.0) == 3
        assert cache.latest("k") == 3

    def test_read_before_first_write(self):
        cache = DistributedCache()
        cache.put("k", 1, at_time=5.0)
        assert cache.get_as_of("k", 4.0) is None

    def test_missing_key(self):
        cache = DistributedCache()
        assert cache.get_as_of("nope", 1.0) is None
        assert cache.latest("nope") is None

    def test_rejects_time_travel(self):
        cache = DistributedCache()
        cache.put("k", 1, at_time=5.0)
        with pytest.raises(ValueError):
            cache.put("k", 2, at_time=4.0)

    def test_history_pruned(self):
        cache = DistributedCache(history_limit=10)
        for i in range(100):
            cache.put("k", i, at_time=float(i))
        assert cache.latest("k") == 99


class TestCacheClient:
    def test_refresh_interval(self):
        cache = DistributedCache()
        client = CacheClient(cache, sync_interval=1.0)
        cache.put("k", 1, at_time=0.0)
        assert client.read("k", 0.0) == 1
        cache.put("k", 2, at_time=0.5)
        # Local copy still serves the stale value inside the interval.
        assert client.read("k", 0.9) == 1
        # Past the interval, the client re-syncs.
        assert client.read("k", 1.1) == 2

    def test_sync_counter(self):
        cache = DistributedCache()
        client = CacheClient(cache, sync_interval=1.0)
        cache.put("k", 1, at_time=0.0)
        client.read("k", 0.0)
        client.read("k", 0.5)
        client.read("k", 2.0)
        assert client.syncs == 2


class TestStateManagers:
    def test_round_robin_lags_by_merge_interval(self):
        mgr = RoundRobinStateManager(num_pes=4)
        for i in range(95):
            mgr.on_tuple(i * 0.001)
        # No merge batch shipped yet: followers know nothing.
        assert mgr.local_count(0, 0.1) == 95
        assert mgr.local_count(1, 0.1) == 0
        assert mgr.max_divergence(0.1) == 95
        mgr.on_merge_batch(1, 50, 0.1)
        assert mgr.local_count(1, 0.1) == 50
        assert mgr.max_divergence(0.1) == 45

    def test_cached_manager_bounded_staleness(self):
        mgr = CachedStateManager(num_pes=4, sync_interval=0.01)
        for i in range(100):
            mgr.on_tuple(i * 0.001)
        # At time 0.1 every follower can sync a recent count.
        for pe in range(1, 4):
            assert mgr.local_count(pe, 0.1) == 100
        assert mgr.max_divergence(0.1) == 0

    def test_cached_manager_staleness_within_interval(self):
        mgr = CachedStateManager(num_pes=2, sync_interval=1.0)
        mgr.on_tuple(0.0)
        assert mgr.local_count(1, 0.0) == 1
        for i in range(1, 50):
            mgr.on_tuple(i * 0.001)
        # Follower synced at t=0 and stays stale until t=1.
        assert mgr.local_count(1, 0.5) == 1
        assert mgr.max_divergence(0.5) == 49

    def test_divergence_shapes_rr_vs_dc(self):
        """The Figure 19 claim: cache sync diverges less than round-robin."""
        rr = RoundRobinStateManager(num_pes=4)
        dc = CachedStateManager(num_pes=4, sync_interval=0.005)
        merge_every = 200
        rr_div = []
        dc_div = []
        for i in range(1000):
            now = i * 0.001
            rr.on_tuple(now)
            dc.on_tuple(now)
            if (i + 1) % merge_every == 0:
                rr.on_merge_batch((i // merge_every) % 4, merge_every, now)
            if i % 50 == 0:
                rr_div.append(rr.max_divergence(now))
                dc_div.append(dc.max_divergence(now))
        assert sum(dc_div) < sum(rr_div)

    def test_rejects_zero_pes(self):
        with pytest.raises(ValueError):
            RoundRobinStateManager(0)
