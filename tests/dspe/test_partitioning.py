"""Partitioning strategies: hash, broadcast, round-robin, direct."""

import pytest

from repro.dspe import Grouping


class TestHash:
    def test_deterministic(self):
        g = Grouping.hash_by(lambda p: p)
        assert g.targets(42, 8) == g.targets(42, 8)

    def test_same_key_same_target(self):
        g = Grouping.hash_by(lambda p: p["k"])
        a = g.targets({"k": 7, "x": 1}, 5)
        b = g.targets({"k": 7, "x": 2}, 5)
        assert a == b

    def test_spreads_keys(self):
        g = Grouping.hash_by(lambda p: p)
        targets = {g.targets(i, 8)[0] for i in range(200)}
        assert len(targets) == 8

    def test_single_target(self):
        g = Grouping.hash_by(lambda p: p)
        result = g.targets("anything", 4)
        assert len(result) == 1
        assert 0 <= result[0] < 4


class TestBroadcast:
    def test_all_pes(self):
        g = Grouping.broadcast()
        assert g.targets("x", 5) == [0, 1, 2, 3, 4]

    def test_empty_downstream(self):
        assert Grouping.broadcast().targets("x", 0) == []


class TestRoundRobin:
    def test_cycles(self):
        g = Grouping.round_robin()
        seq = [g.targets("x", 3)[0] for __ in range(7)]
        assert seq == [0, 1, 2, 0, 1, 2, 0]

    def test_shuffle_alias(self):
        g = Grouping.shuffle()
        assert g.kind == Grouping.ROUND_ROBIN


class TestDirect:
    def test_explicit_target(self):
        g = Grouping.direct(lambda p: p["target"])
        assert g.targets({"target": 2}, 4) == [2]

    def test_wraps_modulo(self):
        g = Grouping.direct(lambda p: p)
        assert g.targets(10, 4) == [2]

    def test_unknown_kind_raises(self):
        g = Grouping("bogus")
        with pytest.raises(ValueError):
            g.targets("x", 2)
