"""Partitioning strategies: hash, broadcast, round-robin, direct —
plus the range-shard partition behind the sharded SPO-Join."""

import numpy as np
import pytest

from repro.core.predicates import BandPredicate, Op, Predicate
from repro.dspe import Grouping
from repro.dspe.partitioning import RangeShards


class TestHash:
    def test_deterministic(self):
        g = Grouping.hash_by(lambda p: p)
        assert g.targets(42, 8) == g.targets(42, 8)

    def test_same_key_same_target(self):
        g = Grouping.hash_by(lambda p: p["k"])
        a = g.targets({"k": 7, "x": 1}, 5)
        b = g.targets({"k": 7, "x": 2}, 5)
        assert a == b

    def test_spreads_keys(self):
        g = Grouping.hash_by(lambda p: p)
        targets = {g.targets(i, 8)[0] for i in range(200)}
        assert len(targets) == 8

    def test_single_target(self):
        g = Grouping.hash_by(lambda p: p)
        result = g.targets("anything", 4)
        assert len(result) == 1
        assert 0 <= result[0] < 4


class TestBroadcast:
    def test_all_pes(self):
        g = Grouping.broadcast()
        assert g.targets("x", 5) == [0, 1, 2, 3, 4]

    def test_empty_downstream(self):
        assert Grouping.broadcast().targets("x", 0) == []


class TestRoundRobin:
    def test_cycles(self):
        g = Grouping.round_robin()
        seq = [g.targets("x", 3)[0] for __ in range(7)]
        assert seq == [0, 1, 2, 0, 1, 2, 0]

    def test_shuffle_alias(self):
        g = Grouping.shuffle()
        assert g.kind == Grouping.ROUND_ROBIN


class TestDirect:
    def test_explicit_target(self):
        g = Grouping.direct(lambda p: p["target"])
        assert g.targets({"target": 2}, 4) == [2]

    def test_wraps_modulo(self):
        g = Grouping.direct(lambda p: p)
        assert g.targets(10, 4) == [2]

    def test_unknown_kind_raises(self):
        g = Grouping("bogus")
        with pytest.raises(ValueError):
            g.targets("x", 2)


class TestRoundRobinState:
    """Round-robin rotation is operator state: it must survive a
    snapshot/restore cycle so recovery replays the same placement."""

    def test_snapshot_restore_resumes_rotation(self):
        g = Grouping.round_robin()
        for __ in range(5):
            g.targets("x", 3)
        snap = g.snapshot_state()
        restored = Grouping.round_robin()
        restored.restore_state(snap)
        assert [restored.targets("x", 3)[0] for __ in range(4)] == [
            g.targets("x", 3)[0] for __ in range(4)
        ]

    def test_restore_to_zero_resets(self):
        g = Grouping.round_robin()
        g.targets("x", 3)
        g.restore_state({"_rr_counter": 0})
        assert g.targets("x", 3) == [0]


class TestRangeShardsConstruction:
    def test_cuts_must_strictly_ascend(self):
        with pytest.raises(ValueError):
            RangeShards([0.5, 0.5])
        with pytest.raises(ValueError):
            RangeShards([0.7, 0.3])

    def test_uniform(self):
        shards = RangeShards.uniform(4)
        assert shards.num_shards == 4
        assert shards.cuts.tolist() == [0.25, 0.5, 0.75]
        assert RangeShards.uniform(1).num_shards == 1

    def test_with_cuts_keeps_shard_count(self):
        shards = RangeShards.uniform(4)
        assert shards.with_cuts([0.1, 0.2, 0.3]).num_shards == 4
        with pytest.raises(ValueError):
            shards.with_cuts([0.1, 0.2])


class TestFromSample:
    def test_duplicate_heavy_sample_keeps_shard_count(self):
        # Regression: interpolated quantiles over this sample land three
        # targets on 0.5 and collapse the cut set, silently starving
        # shard PEs.  Positional cuts over the distinct values must
        # yield exactly the requested count.
        values = [0.5] * 97 + [0.1, 0.2, 0.9]
        shards = RangeShards.from_sample(values, 4)
        assert shards.num_shards == 4
        cuts = shards.cuts.tolist()
        assert len(cuts) == 3
        assert all(b > a for a, b in zip(cuts, cuts[1:]))

    def test_exactly_enough_distinct_values(self):
        shards = RangeShards.from_sample([3.0, 1.0, 2.0, 1.0, 3.0], 3)
        assert shards.num_shards == 3
        assert shards.cuts.tolist() == [2.0, 3.0]

    def test_too_few_distinct_values_raises(self):
        with pytest.raises(ValueError):
            RangeShards.from_sample([1.0] * 50 + [2.0] * 50, 3)

    def test_single_shard_needs_no_cuts(self):
        assert RangeShards.from_sample([1.0, 1.0], 1).num_shards == 1


class TestDiff:
    def test_unchanged_cuts(self):
        shards = RangeShards.uniform(4)
        assert shards.diff([0.25, 0.5, 0.75]) == ([], 0, 0)

    def test_moved_cut_affects_both_neighbours(self):
        shards = RangeShards.uniform(4)
        affected, splits, merges = shards.diff([0.25, 0.6, 0.75])
        assert affected == [1, 2]
        assert splits == 1  # 0.6 divides old shard 2
        assert merges == 1  # the 0.5 boundary disappeared

    def test_wrong_cut_count_raises(self):
        with pytest.raises(ValueError):
            RangeShards.uniform(4).diff([0.5])


class TestOwnerOf:
    def test_cut_value_belongs_to_upper_shard(self):
        shards = RangeShards([0.5])
        assert shards.owner_of([0.5]).tolist() == [1]
        assert shards.owner_of([np.nextafter(0.5, -np.inf)]).tolist() == [0]

    def test_infinities(self):
        shards = RangeShards.uniform(4)
        assert shards.owner_of([-np.inf, np.inf]).tolist() == [0, 3]

    def test_nan_has_a_consistent_owner(self):
        # NaN partitions to the last shard (searchsorted order), so a
        # NaN-keyed tuple has exactly one home — the anchor invariant
        # the sharded join's per-probe accounting relies on.
        shards = RangeShards.uniform(4)
        assert shards.owner_of([np.nan]).tolist() == [3]

    def test_single_shard_owns_everything(self):
        shards = RangeShards.uniform(1)
        values = [-np.inf, -5.0, 0.3, np.inf, np.nan]
        assert shards.owner_of(values).tolist() == [0] * len(values)


class TestProbeSpan:
    def test_single_shard_full_span(self):
        lo, hi = RangeShards.uniform(1).probe_span(
            Predicate(0, Op.GT, 0), [0.1, 0.9]
        )
        assert lo.tolist() == [0, 0]
        assert hi.tolist() == [0, 0]

    def test_empty_probe_batch(self):
        lo, hi = RangeShards.uniform(4).probe_span(Predicate(0, Op.GT, 0), [])
        assert len(lo) == 0 and len(hi) == 0

    def test_gt_spans_lower_shards(self):
        # probe > stored: satisfying stored values lie below the probe.
        shards = RangeShards.uniform(4)
        lo, hi = shards.probe_span(Predicate(0, Op.GT, 0), [0.6])
        assert (lo[0], hi[0]) == (0, 2)

    def test_lt_spans_upper_shards(self):
        shards = RangeShards.uniform(4)
        lo, hi = shards.probe_span(Predicate(0, Op.LT, 0), [0.6])
        assert (lo[0], hi[0]) == (2, 3)

    def test_probe_exactly_at_cut_over_approximates_soundly(self):
        # stored < 0.5 lives entirely in shards 0-1, but the span may
        # include the cut's upper shard — sound (exact evaluation there
        # adds no false matches), never an under-approximation.
        shards = RangeShards.uniform(4)
        lo, hi = shards.probe_span(Predicate(0, Op.GT, 0), [0.5])
        assert lo[0] == 0
        assert hi[0] >= 1

    def test_eq_pins_one_shard(self):
        shards = RangeShards.uniform(4)
        lo, hi = shards.probe_span(Predicate(0, Op.EQ, 0), [0.6])
        assert lo[0] == hi[0] == shards.owner_of([0.6])[0]

    def test_band_spans_width_window(self):
        shards = RangeShards.uniform(4)
        lo, hi = shards.probe_span(BandPredicate(0, 0, width=0.1), [0.5])
        assert (lo[0], hi[0]) == (1, 2)

    def test_multi_interval_pred_falls_back_to_full_span(self):
        shards = RangeShards.uniform(4)
        lo, hi = shards.probe_span(Predicate(0, Op.NE, 0), [0.6])
        assert (lo[0], hi[0]) == (0, 3)

    def test_flipped_probe_role(self):
        # Probe on the predicate's right side: LT flips to GT, so the
        # span covers the lower shards.
        shards = RangeShards.uniform(4)
        lo, hi = shards.probe_span(
            Predicate(0, Op.LT, 0), [0.6], probe_is_left=False
        )
        assert (lo[0], hi[0]) == (0, 2)

    def test_span_never_inverts(self):
        shards = RangeShards.uniform(4)
        values = [-np.inf, 0.0, 0.25, 0.5, 0.99, np.inf, np.nan]
        for op in (Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ, Op.NE):
            lo, hi = shards.probe_span(Predicate(0, op, 0), values)
            assert (lo <= hi).all()
            assert (lo >= 0).all() and (hi < shards.num_shards).all()
