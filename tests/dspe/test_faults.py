"""Fault scheduler: deterministic plans, validation, window queries."""

import pytest

from repro.dspe import CrashEvent, FaultConfig, FaultPlan, build_fault_plan

PAR = {"joiner": 2, "aux": 1}


class TestConfigValidation:
    def test_negative_crash_rate(self):
        with pytest.raises(ValueError):
            FaultConfig(crash_rate=-1.0)

    def test_nonpositive_horizon(self):
        with pytest.raises(ValueError):
            FaultConfig(horizon=0.0)

    def test_negative_restart_delay(self):
        with pytest.raises(ValueError):
            FaultConfig(restart_delay=-0.1)

    def test_multiplier_below_one(self):
        with pytest.raises(ValueError):
            FaultConfig(delay_spike_multiplier=0.5)

    def test_crash_event_validation(self):
        with pytest.raises(ValueError):
            CrashEvent("joiner", 0, -1.0, 0.01)
        with pytest.raises(ValueError):
            CrashEvent("joiner", 0, 1.0, -0.01)


class TestBuildPlan:
    def test_same_seed_same_plan(self):
        config = FaultConfig(
            crash_rate=3.0, horizon=0.5, delay_spike_rate=2.0,
            cache_partition_rate=1.0,
        )
        a = build_fault_plan(config, PAR, 7)
        b = build_fault_plan(config, PAR, 7)
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_different_plan(self):
        config = FaultConfig(crash_rate=5.0, horizon=0.5)
        plans = {
            build_fault_plan(config, PAR, seed).fingerprint()
            for seed in range(6)
        }
        assert len(plans) > 1

    def test_config_seed_overrides_engine_seed(self):
        config = FaultConfig(crash_rate=5.0, horizon=0.5, seed=3)
        a = build_fault_plan(config, PAR, 100)
        b = build_fault_plan(config, PAR, 200)
        assert a.fingerprint() == b.fingerprint()

    def test_explicit_crash_times_verbatim(self):
        config = FaultConfig(
            crash_times=[("joiner", 1, 0.25), ("joiner", 0, 0.1)],
            restart_delay=0.02,
        )
        plan = build_fault_plan(config, PAR, 0)
        assert [(c.component, c.index, c.at) for c in plan.crashes] == [
            ("joiner", 0, 0.1),
            ("joiner", 1, 0.25),
        ]
        assert all(c.restart_delay == 0.02 for c in plan.crashes)

    def test_crashes_sorted_and_within_horizon(self):
        config = FaultConfig(crash_rate=4.0, horizon=0.3)
        plan = build_fault_plan(config, PAR, 11)
        times = [c.at for c in plan.crashes]
        assert times == sorted(times)
        assert all(0.0 <= at <= 0.3 for at in times)

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            build_fault_plan(
                FaultConfig(crash_times=[("nope", 0, 0.1)]), PAR, 0
            )
        with pytest.raises(ValueError):
            build_fault_plan(
                FaultConfig(crash_rate=1.0, components=["nope"]), PAR, 0
            )

    def test_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_fault_plan(
                FaultConfig(crash_times=[("joiner", 2, 0.1)]), PAR, 0
            )

    def test_zero_rate_empty_plan(self):
        plan = build_fault_plan(FaultConfig(), PAR, 5)
        assert plan.crashes == []
        assert plan.delay_spikes == []
        assert plan.cache_partitions == []

    def test_crashes_of_filters_by_component(self):
        config = FaultConfig(
            crash_times=[("joiner", 0, 0.1), ("aux", 0, 0.2)]
        )
        plan = build_fault_plan(config, PAR, 0)
        assert {c.component for c in plan.crashes_of("joiner")} == {"joiner"}
        assert len(plan.crashes_of("aux")) == 1


class TestDelayMultiplier:
    def test_windows(self):
        plan = FaultPlan([], [(0.1, 0.2, 8.0), (0.3, 0.4, 4.0)], [], 0)
        assert plan.delay_multiplier(0.05) == 1.0
        assert plan.delay_multiplier(0.15) == 8.0
        assert plan.delay_multiplier(0.2) == 1.0  # end-exclusive
        assert plan.delay_multiplier(0.35) == 4.0
        assert plan.delay_multiplier(0.9) == 1.0

    def test_overlapping_windows_take_max(self):
        plan = FaultPlan([], [(0.0, 0.5, 2.0), (0.1, 0.3, 6.0)], [], 0)
        assert plan.delay_multiplier(0.2) == 6.0
        assert plan.delay_multiplier(0.4) == 2.0


class TestWorkerFaultPlan:
    """Seeded real-process fault plans (worker kills and stalls)."""

    def _import(self):
        from repro.dspe import (
            ProcessFaultConfig,
            WorkerFaultEvent,
            WorkerFaultPlan,
            build_process_fault_plan,
        )

        return (
            ProcessFaultConfig,
            WorkerFaultEvent,
            WorkerFaultPlan,
            build_process_fault_plan,
        )

    def test_event_validation(self):
        _, WorkerFaultEvent, _, _ = self._import()
        with pytest.raises(ValueError):
            WorkerFaultEvent(0, 0, 0)  # at_message must be >= 1
        with pytest.raises(ValueError):
            WorkerFaultEvent(0, 0, 1, kind="explode")
        with pytest.raises(ValueError):
            WorkerFaultEvent(0, 0, 1, kind="stall", stall_seconds=0.0)

    def test_events_slotted_by_worker_and_incarnation(self):
        _, WorkerFaultEvent, WorkerFaultPlan, _ = self._import()
        plan = WorkerFaultPlan(
            [
                WorkerFaultEvent(1, 0, 9, kind="kill"),
                WorkerFaultEvent(0, 1, 3, kind="kill"),
                WorkerFaultEvent(0, 0, 5, kind="stall", stall_seconds=2.0),
            ],
            seed=7,
        )
        assert [e.at_message for e in plan.events_for(0, 0)] == [5]
        assert [e.at_message for e in plan.events_for(0, 1)] == [3]
        assert [e.at_message for e in plan.events_for(1, 0)] == [9]
        assert plan.events_for(2, 0) == []
        assert plan.kill_count() == 2
        assert plan.stall_count() == 1

    def test_build_is_deterministic_in_seed(self):
        ProcessFaultConfig, _, _, build = self._import()
        config = ProcessFaultConfig(kill_rate=1.5, stall_rate=0.5)
        a = build(config, num_workers=3, seed=42)
        b = build(config, num_workers=3, seed=42)
        c = build(config, num_workers=3, seed=43)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_explicit_events_bypass_sampling(self):
        ProcessFaultConfig, WorkerFaultEvent, _, build = self._import()
        events = [WorkerFaultEvent(0, 0, 4, kind="kill")]
        plan = build(
            ProcessFaultConfig(events=events), num_workers=2, seed=1
        )
        assert plan.kill_count() == 1
        assert plan.events_for(0, 0)[0].at_message == 4

    def test_explicit_event_out_of_range_rejected(self):
        ProcessFaultConfig, WorkerFaultEvent, _, build = self._import()
        events = [WorkerFaultEvent(5, 0, 4, kind="kill")]
        with pytest.raises(ValueError):
            build(ProcessFaultConfig(events=events), num_workers=2, seed=1)
