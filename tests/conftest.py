"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import random
from collections import deque
from typing import List

import pytest

from repro.core import JoinType, Op, QuerySpec, StreamTuple, WindowSpec, make_tuple
from repro.core.window import MergePolicy

ALL_OPS = [Op.LT, Op.GT, Op.LE, Op.GE, Op.EQ, Op.NE]
INEQ_OPS = [Op.LT, Op.GT, Op.LE, Op.GE]


def random_tuples(
    n: int,
    stream: str = "T",
    start_tid: int = 0,
    lo: int = 0,
    hi: int = 20,
    seed: int = 0,
    num_fields: int = 2,
) -> List[StreamTuple]:
    """Small-domain random tuples (duplicates likely — the hard case)."""
    rng = random.Random(seed)
    return [
        make_tuple(
            start_tid + i,
            stream,
            *(rng.randint(lo, hi) for __ in range(num_fields)),
            event_time=i * 0.001,
        )
        for i in range(n)
    ]


def interleaved_rs(n: int, seed: int = 0, lo: int = 0, hi: int = 25) -> List[StreamTuple]:
    """A mixed R/S arrival order with router-style global ids."""
    rng = random.Random(seed)
    return [
        make_tuple(
            i,
            rng.choice(["R", "S"]),
            rng.randint(lo, hi),
            rng.randint(lo, hi),
            event_time=i * 0.001,
        )
        for i in range(n)
    ]


class ReferenceWindowJoin:
    """Brute-force join with SPO-Join's coarse window semantics.

    Mirrors exactly the retention policy of :class:`repro.core.SPOJoin`
    (mutable slice plus ``max_batches`` merge intervals) so algorithm
    outputs can be compared verbatim.
    """

    def __init__(self, query: QuerySpec, window: WindowSpec, sub_intervals: int = 1):
        self.query = query
        self.window = window
        policy = MergePolicy(window, sub_intervals)
        self.delta = policy.delta
        self.max_batches = policy.max_batches
        self.mutable: List[StreamTuple] = []
        self.batches: deque = deque()
        self._counter = 0.0
        self._next_merge_time = None

    def process(self, t: StreamTuple) -> List[int]:
        stored = list(self.mutable)
        for batch in self.batches:
            stored.extend(batch)
        matches = []
        for s in stored:
            if self.query.is_self_join or self.query.join_type in (
                JoinType.CROSS,
                JoinType.EQUI,
            ):
                if not self.query.is_self_join and s.stream == t.stream:
                    continue
            if not self.query.is_self_join and t.stream != "R":
                ok = self.query.matches(s, t)
            else:
                ok = self.query.matches(t, s)
            if ok:
                matches.append(s.tid)
        self.mutable.append(t)
        self._advance(t)
        return sorted(matches)

    def _advance(self, t: StreamTuple) -> None:
        from repro.core import WindowKind

        if self.window.kind is WindowKind.COUNT:
            self._counter += 1
            if self._counter >= self.delta:
                self._counter = 0
                self._merge()
        else:
            if self._next_merge_time is None:
                self._next_merge_time = t.event_time + self.delta
            elif t.event_time >= self._next_merge_time:
                self._merge()
                self._next_merge_time += self.delta

    def _merge(self) -> None:
        if not self.mutable:
            return
        self.batches.append(self.mutable)
        self.mutable = []
        while len(self.batches) > self.max_batches:
            self.batches.popleft()


@pytest.fixture
def q3_query() -> QuerySpec:
    return QuerySpec.two_inequalities("Q3", JoinType.SELF, Op.GT, Op.LT)


@pytest.fixture
def q1_query() -> QuerySpec:
    return QuerySpec.two_inequalities("Q1", JoinType.CROSS, Op.LT, Op.GT)


@pytest.fixture
def q2_query() -> QuerySpec:
    return QuerySpec.band("Q2", width=4.0)
