"""Unit tests for span-based tuple tracing."""

import pytest

from repro.obs import TraceSpan, Tracer, reconcile_spans


class TestTracer:
    def test_samples_every_delivery_by_default(self):
        tracer = Tracer()
        spans = [tracer.maybe_start(float(i)) for i in range(5)]
        assert all(span is not None for span in spans)
        assert tracer.offered == 5
        assert tracer.skipped == 0

    def test_every_nth_sampling_is_deterministic(self):
        tracer = Tracer(sample_every=3)
        spans = [tracer.maybe_start(float(i)) for i in range(9)]
        sampled = [i for i, span in enumerate(spans) if span is not None]
        assert sampled == [0, 3, 6]
        assert tracer.skipped == 6

    def test_span_cap(self):
        tracer = Tracer(max_spans=2)
        spans = [tracer.maybe_start(float(i)) for i in range(4)]
        assert sum(span is not None for span in spans) == 2

    def test_trace_ids_are_dense(self):
        tracer = Tracer(sample_every=2)
        spans = [tracer.maybe_start(float(i)) for i in range(6)]
        ids = [span.trace_id for span in spans if span is not None]
        assert ids == [0, 1, 2]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestTraceSpan:
    def _linear_span(self):
        # origin 0.0 -> router (net .01, queue .02, svc .03, done .06)
        #            -> joiner (net .04, queue .05, svc .06, done .21)
        span = TraceSpan(0, 0.0)
        span.add_hop("router[0]", "router", 0.01, 0.03, 0.06, 0.03)
        span.add_hop("joiner[0]", "joiner", 0.10, 0.15, 0.21, 0.06)
        return span

    def test_end_to_end_latency(self):
        span = self._linear_span()
        assert span.end_time == pytest.approx(0.21)
        assert span.event_latency == pytest.approx(0.21)

    def test_stage_slices(self):
        stages = self._linear_span().stages()
        assert [s["component"] for s in stages] == ["router", "joiner"]
        assert stages[0]["network_s"] == pytest.approx(0.01)
        assert stages[0]["queue_s"] == pytest.approx(0.02)
        assert stages[0]["service_s"] == pytest.approx(0.03)
        # Second hop's network slice is measured from the first's completion.
        assert stages[1]["network_s"] == pytest.approx(0.04)

    def test_stage_total_telescopes_on_linear_chain(self):
        span = self._linear_span()
        assert span.stage_total() == pytest.approx(span.event_latency)

    def test_empty_span_latency_zero(self):
        span = TraceSpan(0, 1.5)
        assert span.event_latency == 0.0

    def test_to_dict_roundtrips_totals(self):
        d = self._linear_span().to_dict()
        assert d["stage_total_s"] == pytest.approx(d["end_to_end_s"])
        assert len(d["hops"]) == 2


class TestReconcile:
    def test_linear_spans_reconcile_exactly(self):
        spans = []
        for i in range(3):
            span = TraceSpan(i, 0.0)
            span.add_hop("a", "a", 0.1, 0.2, 0.3, 0.1)
            span.add_hop("b", "b", 0.4, 0.4, 0.5, 0.1)
            spans.append(span)
        rec = reconcile_spans(spans)
        assert rec["spans"] == 3
        assert rec["relative_error"] == pytest.approx(0.0, abs=1e-12)

    def test_unfinished_spans_excluded(self):
        rec = reconcile_spans([TraceSpan(0, 0.0)])
        assert rec["spans"] == 0
        assert rec["relative_error"] == 0.0

    def test_branching_span_breaks_telescoping(self):
        # Two hops both fed directly from the origin (a broadcast), the
        # slow branch finishing after the fast one: the slices no longer
        # telescope into the critical path.
        span = TraceSpan(0, 0.0)
        span.add_hop("slow", "slow", 0.0, 0.0, 0.5, 0.5)
        span.add_hop("fast", "fast", 0.0, 0.0, 0.1, 0.1)
        rec = reconcile_spans([span])
        assert rec["end_to_end_s"] == pytest.approx(0.5)
        assert rec["relative_error"] > 0.01
