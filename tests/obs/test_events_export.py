"""Unit tests for the event log and the JSONL export."""

import json

import pytest

from repro.obs import EventLog, ObsConfig, Observer


class TestEventLog:
    def test_ordered_by_time_then_sequence(self):
        log = EventLog()
        log.append("merge", 2.0)
        log.append("crash", 1.0, pe="joiner[0]")
        log.append("restart", 1.0, pe="joiner[0]")
        kinds = [e.kind for e in log.ordered()]
        assert kinds == ["crash", "restart", "merge"]

    def test_counts_and_of_kind(self):
        log = EventLog()
        log.append("merge", 0.1)
        log.append("merge", 0.2)
        log.append("checkpoint", 0.3)
        assert log.counts() == {"merge": 2, "checkpoint": 1}
        assert len(log.of_kind("merge")) == 2

    def test_bounded_with_drop_counter(self):
        log = EventLog(max_events=2)
        for i in range(5):
            log.append("e", float(i))
        assert len(log) == 2
        assert log.dropped == 3

    def test_to_dict_flattens_fields(self):
        log = EventLog()
        log.append("cache_sync", 0.5, pe="pojoin[1]", fields={"evicted": 3})
        (event,) = log.ordered()
        d = event.to_dict()
        assert d == {"event": "cache_sync", "at": 0.5, "pe": "pojoin[1]",
                     "evicted": 3}

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)


class TestExportJsonl:
    def _observer_with_data(self):
        obs = Observer(ObsConfig(tick_interval=0.1))
        obs.on_event("merge", 0.25, pe="joiner[0]", fields={"merge_id": 0})
        obs.on_event("checkpoint", 0.05, pe="joiner[0]")
        obs.telemetry.on_serve("joiner[0]", "joiner", 0.12, 0.01, 1)
        span = obs.tracer.maybe_start(0.0)
        span.add_hop("joiner[0]", "joiner", 0.01, 0.01, 0.02, 0.01)
        return obs

    def test_export_is_time_ordered_jsonl(self, tmp_path):
        obs = self._observer_with_data()
        path = tmp_path / "trace.jsonl"
        written = obs.export_jsonl(str(path), meta={"experiment": "unit"})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert written == len(lines)
        assert lines[0]["kind"] == "meta"
        assert lines[0]["experiment"] == "unit"
        assert lines[0]["lines"] == len(lines) - 1
        times = [line["at"] for line in lines[1:]]
        assert times == sorted(times)
        kinds = {line["kind"] for line in lines[1:]}
        assert kinds == {"event", "telemetry", "trace"}

    def test_unfinished_spans_not_exported(self, tmp_path):
        obs = Observer()
        obs.tracer.maybe_start(0.0)  # never gets a hop
        path = tmp_path / "trace.jsonl"
        obs.export_jsonl(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["meta"]

    def test_summary_shape(self):
        obs = self._observer_with_data()
        summary = obs.summary()
        assert summary["trace"]["completed"] == 1
        assert summary["events"] == {"merge": 1, "checkpoint": 1}
        assert "joiner[0]" in summary["telemetry"]["pes"]
        assert summary["reconciliation"]["spans"] == 1
