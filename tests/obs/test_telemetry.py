"""Unit tests for tick-bucketed per-PE telemetry."""

import pytest

from repro.obs import Telemetry


class TestBucketing:
    def test_services_land_in_start_tick(self):
        tel = Telemetry(tick_interval=0.1)
        tel.on_serve("pe", "joiner", start=0.05, service=0.01, queue_depth=2)
        tel.on_serve("pe", "joiner", start=0.25, service=0.02, queue_depth=0)
        rows = tel.series_of("pe")
        assert [row["tick"] for row in rows] == [0, 2]
        assert rows[0]["service_s"] == pytest.approx(0.01)
        assert rows[1]["service_s"] == pytest.approx(0.02)

    def test_multi_tick_service_charged_to_start(self):
        # A 0.35s service starting in tick 0 stays in tick 0; its busy
        # fraction exceeds 1.0 to flag the spike rather than smear it.
        tel = Telemetry(tick_interval=0.1)
        tel.on_serve("pe", "joiner", start=0.02, service=0.35, queue_depth=1)
        (row,) = tel.series_of("pe")
        assert row["tick"] == 0
        assert row["busy_fraction"] == pytest.approx(3.5)

    def test_queue_depth_stats(self):
        tel = Telemetry(tick_interval=1.0)
        for depth in (0, 4, 2):
            tel.on_serve("pe", "j", start=0.5, service=0.0, queue_depth=depth)
        (row,) = tel.series_of("pe")
        assert row["queue_depth_mean"] == pytest.approx(2.0)
        assert row["queue_depth_max"] == 4

    def test_cost_categories_accumulate(self):
        tel = Telemetry(tick_interval=1.0)
        tel.on_cost("pe", 0.1, "mutable_probe", 0.02)
        tel.on_cost("pe", 0.2, "mutable_probe", 0.03)
        tel.on_cost("pe", 0.3, "merge", 0.05)
        (row,) = tel.series_of("pe")
        assert row["costs"]["mutable_probe"] == pytest.approx(0.05)
        assert row["costs"]["merge"] == pytest.approx(0.05)

    def test_rejects_bad_tick_interval(self):
        with pytest.raises(ValueError):
            Telemetry(tick_interval=0.0)


class TestRowsAndSummary:
    def test_rows_ordered_by_time_then_pe(self):
        tel = Telemetry(tick_interval=0.1)
        tel.on_serve("b", "j", start=0.0, service=0.0, queue_depth=0)
        tel.on_serve("a", "j", start=0.0, service=0.0, queue_depth=0)
        tel.on_serve("a", "j", start=0.15, service=0.0, queue_depth=0)
        keys = [(row["tick_start"], row["pe"]) for row in tel.rows()]
        assert keys == sorted(keys)

    def test_summary_totals(self):
        tel = Telemetry(tick_interval=0.1)
        tel.on_serve("pe", "joiner", 0.0, 0.04, 1, tuples=8)
        tel.on_serve("pe", "joiner", 0.15, 0.06, 3, tuples=8)
        tel.on_cost("pe", 0.0, "merge", 0.01)
        summary = tel.summary()
        row = summary["pes"]["pe"]
        assert row["messages"] == 2
        assert row["tuples"] == 16
        assert row["service_s"] == pytest.approx(0.10)
        # Active horizon is ticks 0..1 -> 0.2s of which 0.1s busy.
        assert row["busy_fraction"] == pytest.approx(0.5)
        assert summary["cost_categories_s"]["merge"] == pytest.approx(0.01)

    def test_empty_summary(self):
        summary = Telemetry().summary()
        assert summary["pes"] == {}
        assert summary["cost_categories_s"] == {}
