"""Vectorized PO-Join batch: bit-for-bit parity with the scalar batch."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JoinType,
    Op,
    Predicate,
    QuerySpec,
    WindowSpec,
    build_merge_batch,
    make_tuple,
)
from repro.core.pojoin import POJoinBatch
from repro.core.pojoin_numpy import VectorPOJoinBatch
from repro.indexes import BPlusTree

ALL_OPS = [Op.LT, Op.GT, Op.LE, Op.GE, Op.EQ, Op.NE]


def tree_from(tuples, field):
    tree = BPlusTree(order=8)
    for t in tuples:
        tree.insert(t.values[field], t.tid)
    return tree


def pair_of_batches(query, left, right=None):
    if query.is_self_join:
        lt = [tree_from(left, p.right_field) for p in query.predicates]
        rt = None
    else:
        lt = [tree_from(left, p.left_field) for p in query.predicates]
        rt = (
            [tree_from(right, p.right_field) for p in query.predicates]
            if right is not None
            else None
        )
    merge = build_merge_batch(0, query, lt, rt)
    return POJoinBatch(query, merge), VectorPOJoinBatch(query, merge)


def rand_tuples(stream, n, start, seed, hi=12, fields=2):
    rng = random.Random(seed)
    return [
        make_tuple(
            start + i, stream, *(rng.randint(0, hi) for __ in range(fields))
        )
        for i in range(n)
    ]


class TestParity:
    @pytest.mark.parametrize("op1", ALL_OPS)
    @pytest.mark.parametrize("op2", ALL_OPS)
    def test_self_join_all_ops(self, op1, op2):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, op1, op2)
        stored = rand_tuples("T", 30, 0, seed=hash((op1, op2)) % 991)
        scalar, vector = pair_of_batches(q, stored)
        for probe in rand_tuples("T", 10, 1000, seed=90):
            assert sorted(vector.probe(probe, True)) == sorted(
                scalar.probe(probe, True)
            )

    @pytest.mark.parametrize("probe_is_left", [True, False])
    def test_cross_join(self, q1_query, probe_is_left):
        left = rand_tuples("R", 25, 0, seed=91)
        right = rand_tuples("S", 25, 100, seed=92)
        scalar, vector = pair_of_batches(q1_query, left, right)
        stream = "R" if probe_is_left else "S"
        for probe in rand_tuples(stream, 12, 1000, seed=93):
            assert sorted(vector.probe(probe, probe_is_left)) == sorted(
                scalar.probe(probe, probe_is_left)
            )

    def test_band_join(self, q2_query):
        rng = random.Random(94)
        stored = [
            make_tuple(i, "T", rng.uniform(0, 10), rng.uniform(0, 10))
            for i in range(30)
        ]
        scalar, vector = pair_of_batches(q2_query, stored)
        probe = make_tuple(999, "T", 5.0, 5.0)
        assert sorted(vector.probe(probe, True)) == sorted(
            scalar.probe(probe, True)
        )

    def test_single_predicate(self):
        q = QuerySpec.equi("qe")
        left = rand_tuples("R", 20, 0, seed=95, hi=5, fields=1)
        right = rand_tuples("S", 20, 100, seed=96, hi=5, fields=1)
        scalar, vector = pair_of_batches(q, left, right)
        probe = make_tuple(999, "R", 3)
        assert sorted(vector.probe(probe, True)) == sorted(
            scalar.probe(probe, True)
        )

    def test_three_predicates(self):
        q = QuerySpec(
            "q3p",
            JoinType.SELF,
            [Predicate(0, Op.GT, 0), Predicate(1, Op.LT, 1), Predicate(2, Op.NE, 2)],
        )
        stored = rand_tuples("T", 25, 0, seed=97, fields=3)
        scalar, vector = pair_of_batches(q, stored)
        for probe in rand_tuples("T", 10, 1000, seed=98, fields=3):
            assert sorted(vector.probe(probe, True)) == sorted(
                scalar.probe(probe, True)
            )

    def test_empty_batch(self, q3_query):
        scalar, vector = pair_of_batches(q3_query, [])
        assert vector.probe(make_tuple(1, "T", 5, 5), True) == []

    @settings(max_examples=40, deadline=None)
    @given(
        vals=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=25
        ),
        probe_vals=st.tuples(st.integers(-1, 9), st.integers(-1, 9)),
        op1=st.sampled_from(ALL_OPS),
        op2=st.sampled_from(ALL_OPS),
    )
    def test_property_parity(self, vals, probe_vals, op1, op2):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, op1, op2)
        stored = [make_tuple(i, "T", a, b) for i, (a, b) in enumerate(vals)]
        scalar, vector = pair_of_batches(q, stored)
        probe = make_tuple(999, "T", *probe_vals)
        assert sorted(vector.probe(probe, True)) == sorted(
            scalar.probe(probe, True)
        )


class TestIntegration:
    def test_spo_join_with_vectorized_immutable(self, q3_query):
        from repro.joins import NestedLoopJoin, make_spo_join

        from ..conftest import random_tuples

        window = WindowSpec.count(100, 20)
        spo = make_spo_join(q3_query, window, immutable="po_vec")
        nlj = NestedLoopJoin(q3_query, window)
        for t in random_tuples(400, seed=99):
            assert sorted(m for __, m in spo.process(t)) == sorted(
                m for __, m in nlj.process(t)
            )

    def test_accounting_delegates(self, q3_query):
        stored = rand_tuples("T", 20, 0, seed=100)
        scalar, vector = pair_of_batches(q3_query, stored)
        assert len(vector) == len(scalar)
        assert vector.memory_bits() == scalar.memory_bits()
        assert vector.index_overhead_bits() == scalar.index_overhead_bits()
        assert vector.batch_id == scalar.batch_id
