"""Bit array: set/clear/range ops, intersection, popcounts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitSet


class TestBasics:
    def test_starts_empty(self):
        bits = BitSet(10)
        assert bits.count() == 0
        assert not bits.any()
        assert bits.to_list() == []
        assert len(bits) == 10

    def test_set_and_get(self):
        bits = BitSet(10)
        bits.set(3)
        bits.set(7)
        assert bits.get(3) and bits.get(7)
        assert not bits.get(4)
        assert bits.to_list() == [3, 7]

    def test_clear(self):
        bits = BitSet(10)
        bits.set(5)
        bits.clear(5)
        assert not bits.get(5)
        bits.clear(5)  # idempotent
        assert bits.count() == 0

    def test_clear_all(self):
        bits = BitSet(10)
        bits.set_range(0, 10)
        bits.clear_all()
        assert bits.count() == 0

    def test_bounds_checked(self):
        bits = BitSet(4)
        with pytest.raises(IndexError):
            bits.set(4)
        with pytest.raises(IndexError):
            bits.get(-1)
        with pytest.raises(IndexError):
            bits.set_range(0, 5)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BitSet(-1)

    def test_zero_size(self):
        bits = BitSet(0)
        assert bits.count() == 0
        assert list(bits.iter_set()) == []


class TestRangeOps:
    def test_set_range(self):
        bits = BitSet(16)
        bits.set_range(4, 9)
        assert bits.to_list() == [4, 5, 6, 7, 8]

    def test_set_range_empty(self):
        bits = BitSet(16)
        bits.set_range(5, 5)
        bits.set_range(7, 3)
        assert bits.count() == 0

    def test_iter_set_window(self):
        bits = BitSet(20)
        bits.set_range(2, 18)
        assert list(bits.iter_set(5, 9)) == [5, 6, 7, 8]

    def test_count_range(self):
        bits = BitSet(32)
        bits.set_range(8, 24)
        assert bits.count_range(0, 32) == 16
        assert bits.count_range(10, 12) == 2
        assert bits.count_range(24, 32) == 0
        assert bits.count_range(9, 9) == 0


class TestCombination:
    def test_intersect(self):
        a = BitSet(8)
        b = BitSet(8)
        a.set_range(0, 5)
        b.set_range(3, 8)
        assert a.intersect(b).to_list() == [3, 4]

    def test_intersect_different_sizes(self):
        a = BitSet(4)
        b = BitSet(10)
        a.set_range(0, 4)
        b.set_range(2, 10)
        combined = a.intersect(b)
        assert combined.size == 10
        assert combined.to_list() == [2, 3]

    def test_union(self):
        a = BitSet(8)
        b = BitSet(8)
        a.set(1)
        b.set(6)
        assert a.union(b).to_list() == [1, 6]

    def test_copy_is_independent(self):
        a = BitSet(8)
        a.set(1)
        b = a.copy()
        b.set(2)
        assert a.to_list() == [1]
        assert b.to_list() == [1, 2]

    def test_equality(self):
        a = BitSet(8)
        b = BitSet(8)
        a.set(3)
        b.set(3)
        assert a == b
        b.set(4)
        assert a != b


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(
        indices=st.sets(st.integers(min_value=0, max_value=127), max_size=50),
        lo=st.integers(min_value=0, max_value=128),
        hi=st.integers(min_value=0, max_value=128),
    )
    def test_iter_and_count_agree_with_model(self, indices, lo, hi):
        bits = BitSet(128)
        for i in indices:
            bits.set(i)
        expected = sorted(i for i in indices if lo <= i < hi)
        assert list(bits.iter_set(lo, hi)) == expected
        assert bits.count_range(lo, hi) == len(expected)

    @settings(max_examples=60, deadline=None)
    @given(
        a_idx=st.sets(st.integers(min_value=0, max_value=63), max_size=30),
        b_idx=st.sets(st.integers(min_value=0, max_value=63), max_size=30),
    )
    def test_intersect_is_set_intersection(self, a_idx, b_idx):
        a = BitSet(64)
        b = BitSet(64)
        for i in a_idx:
            a.set(i)
        for i in b_idx:
            b.set(i)
        assert a.intersect(b).to_list() == sorted(a_idx & b_idx)
        assert a.union(b).to_list() == sorted(a_idx | b_idx)
