"""Time-based windows under irregular event-time patterns."""

import random

import pytest

from repro.core import SPOJoin, WindowSpec, make_tuple

from ..conftest import ReferenceWindowJoin


def drive_both(query, window, tuples):
    join = SPOJoin(query, window)
    ref = ReferenceWindowJoin(query, window)
    for t in tuples:
        got = sorted(m for __, m in join.process(t))
        assert got == ref.process(t), t.tid
    return join


class TestIrregularEventTimes:
    def test_poisson_gaps(self, q3_query):
        rng = random.Random(50)
        at = 0.0
        tuples = []
        for i in range(300):
            at += rng.expovariate(1000.0)
            tuples.append(
                make_tuple(i, "T", rng.randint(0, 15), rng.randint(0, 15),
                           event_time=at)
            )
        drive_both(q3_query, WindowSpec.time(0.1, 0.02), tuples)

    def test_long_silence_then_burst(self, q3_query):
        rng = random.Random(51)
        tuples = []
        at = 0.0
        for i in range(300):
            # Every 50 tuples the stream goes quiet for several windows.
            at += 1.0 if i % 50 == 0 else 0.001
            tuples.append(
                make_tuple(i, "T", rng.randint(0, 15), rng.randint(0, 15),
                           event_time=at)
            )
        join = drive_both(q3_query, WindowSpec.time(0.2, 0.05), tuples)
        assert join.stats.merges > 0

    def test_many_tuples_same_timestamp(self, q3_query):
        rng = random.Random(52)
        tuples = [
            make_tuple(i, "T", rng.randint(0, 15), rng.randint(0, 15),
                       event_time=(i // 40) * 0.05)
            for i in range(240)
        ]
        drive_both(q3_query, WindowSpec.time(0.1, 0.05), tuples)

    def test_slide_much_smaller_than_gap(self, q3_query):
        # Event gaps larger than the whole window: nothing ever matches
        # from the immutable tier, but merges must keep firing.
        tuples = [
            make_tuple(i, "T", i % 5, i % 7, event_time=i * 10.0)
            for i in range(50)
        ]
        join = drive_both(q3_query, WindowSpec.time(1.0, 0.5), tuples)
        assert join.stats.merges > 0

    def test_time_window_size_bounded(self, q3_query):
        rng = random.Random(53)
        join = SPOJoin(q3_query, WindowSpec.time(0.1, 0.02))
        for i in range(2000):
            t = make_tuple(i, "T", rng.random(), rng.random(),
                           event_time=i * 0.001)
            join.process(t)
        # ~100ms window at 1000 tuples/sec: about 100 retained tuples.
        total = join.mutable_size() + join.immutable_size()
        assert total <= 140
