"""Mutable component: per-predicate probing, evaluators, drain."""

import random

import pytest

from repro.core import (
    BitSet,
    JoinType,
    MutableComponent,
    Op,
    QuerySpec,
    make_tuple,
)


def rand_tuples(stream, n, start, seed, hi=15):
    rng = random.Random(seed)
    return [
        make_tuple(start + i, stream, rng.randint(0, hi), rng.randint(0, hi))
        for i in range(n)
    ]


class TestInsertAndProbe:
    def test_insert_assigns_sequential_slots(self, q3_query):
        comp = MutableComponent(q3_query)
        tuples = rand_tuples("T", 5, 0, seed=0)
        slots = [comp.insert(t) for t in tuples]
        assert slots == [0, 1, 2, 3, 4]
        assert len(comp) == 5
        assert comp.tids() == [t.tid for t in tuples]

    def test_bit_probe_matches_reference(self, q3_query):
        comp = MutableComponent(q3_query, evaluator="bit")
        stored = rand_tuples("T", 30, 0, seed=1)
        for t in stored:
            comp.insert(t)
        probe = make_tuple(999, "T", 8, 8)
        bits = comp.probe_predicate(0, probe, True)
        assert isinstance(bits, BitSet)
        pred = q3_query.predicates[0]
        expected_slots = {
            i
            for i, s in enumerate(stored)
            if pred.holds(probe.values[0], s.values[0])
        }
        assert set(bits.iter_set()) == expected_slots

    def test_hash_probe_matches_reference(self, q3_query):
        comp = MutableComponent(q3_query, evaluator="hash")
        stored = rand_tuples("T", 30, 0, seed=2)
        for t in stored:
            comp.insert(t)
        probe = make_tuple(999, "T", 8, 8)
        matched = comp.probe_predicate(1, probe, True)
        # The naive baseline is a hash table carrying the matched values.
        assert isinstance(matched, dict)
        pred = q3_query.predicates[1]
        assert set(matched) == {
            s.tid for s in stored if pred.holds(probe.values[1], s.values[1])
        }
        assert all(matched[s.tid] == s.values[1] for s in stored if s.tid in matched)

    @pytest.mark.parametrize("evaluator", ["bit", "hash"])
    def test_evaluate_equals_nested_loop(self, q3_query, evaluator):
        comp = MutableComponent(q3_query, evaluator=evaluator)
        stored = rand_tuples("T", 40, 0, seed=3)
        for t in stored:
            comp.insert(t)
        for probe in rand_tuples("T", 10, 1000, seed=4):
            got = sorted(comp.evaluate(probe, True))
            exp = sorted(s.tid for s in stored if q3_query.matches(probe, s))
            assert got == exp

    def test_self_join_excludes_probe_itself(self, q3_query):
        comp = MutableComponent(q3_query)
        t = make_tuple(5, "T", 3, 3)
        comp.insert(t)
        # Re-evaluating the same tuple must not match itself.
        assert 5 not in comp.evaluate(t, True)

    def test_cross_sides_use_correct_fields(self, q1_query):
        # Left stores left_field values; right stores right_field values.
        left = MutableComponent(q1_query, side="left")
        right = MutableComponent(q1_query, side="right")
        r = make_tuple(0, "R", 1, 9)
        s = make_tuple(1, "S", 5, 3)
        left.insert(r)
        right.insert(s)
        # s probes the left window: R.POWER < S.POWER and R.COOL > S.COOL.
        assert left.evaluate(s, False) == [0]
        # r probes the right window symmetrically.
        assert right.evaluate(r, True) == [1]

    def test_invalid_args_rejected(self, q3_query):
        with pytest.raises(ValueError):
            MutableComponent(q3_query, side="middle")
        with pytest.raises(ValueError):
            MutableComponent(q3_query, evaluator="bloom")


class TestDrain:
    @pytest.mark.parametrize("evaluator", ["bit", "hash"])
    def test_drain_returns_runs_and_resets(self, q3_query, evaluator):
        comp = MutableComponent(q3_query, evaluator=evaluator)
        stored = rand_tuples("T", 20, 0, seed=5)
        for t in stored:
            comp.insert(t)
        runs = comp.drain_runs()
        assert len(runs) == 2
        assert all(len(run) == 20 for run in runs)
        assert len(comp) == 0
        assert comp.tids() == []
        # Component usable after drain.
        comp.insert(make_tuple(100, "T", 1, 1))
        assert len(comp) == 1

    @pytest.mark.parametrize("evaluator", ["bit", "hash"])
    def test_drained_runs_carry_real_tuple_ids(self, q3_query, evaluator):
        comp = MutableComponent(q3_query, evaluator=evaluator)
        stored = rand_tuples("T", 25, 0, seed=6)
        for t in stored:
            comp.insert(t)
        runs = comp.drain_runs()
        for pred_idx, run in enumerate(runs):
            expected = sorted(
                (t.values[pred_idx], t.tid) for t in stored
            )
            assert list(run) == expected

    def test_memory_bits(self, q3_query):
        comp = MutableComponent(q3_query)
        for t in rand_tuples("T", 50, 0, seed=7):
            comp.insert(t)
        assert comp.memory_bits() > 0


class TestIntersect:
    def test_intersect_bitsets(self, q3_query):
        comp = MutableComponent(q3_query)
        for t in rand_tuples("T", 10, 0, seed=8):
            comp.insert(t)
        a = BitSet(10)
        b = BitSet(10)
        a.set_range(0, 6)
        b.set_range(4, 10)
        assert comp.intersect([a, b]) == [comp.tids()[4], comp.tids()[5]]

    def test_intersect_sets(self, q3_query):
        comp = MutableComponent(q3_query, evaluator="hash")
        assert comp.intersect([{1, 2, 3}, {2, 3, 4}]) == [2, 3]

    def test_intersect_empty_list(self, q3_query):
        comp = MutableComponent(q3_query)
        assert comp.intersect([]) == []
