"""Queries with three or more conjunctive predicates (extension).

The paper's machinery evaluates two predicates through the permutation
and offset arrays; this repository extends every operator to arbitrary
conjunctions by treating the extra predicates as residual filters over
the PO-Join candidate set.  These tests pin that behaviour to the
nested-loop reference across the whole stack: the immutable batch, the
local SPO-Join, and the distributed topology.
"""

import random
from collections import defaultdict

import pytest

from repro.core import (
    JoinType,
    Op,
    Predicate,
    QuerySpec,
    SPOJoin,
    StreamTuple,
    WindowSpec,
    make_tuple,
)
from repro.dspe.router import RawTuple
from repro.joins import NestedLoopJoin, SPOConfig, run_spo

from ..conftest import ReferenceWindowJoin


def three_pred_self_query() -> QuerySpec:
    # f0 > f0' AND f1 < f1' AND f2 != f2'
    return QuerySpec(
        "q3p",
        JoinType.SELF,
        [Predicate(0, Op.GT, 0), Predicate(1, Op.LT, 1), Predicate(2, Op.NE, 2)],
    )


def three_pred_cross_query() -> QuerySpec:
    return QuerySpec(
        "q3pc",
        JoinType.CROSS,
        [Predicate(0, Op.LT, 0), Predicate(1, Op.GT, 1), Predicate(2, Op.GE, 2)],
    )


def rand3(n, streams, seed, hi=10):
    rng = random.Random(seed)
    return [
        make_tuple(
            i,
            rng.choice(streams),
            rng.randint(0, hi),
            rng.randint(0, hi),
            rng.randint(0, hi),
        )
        for i in range(n)
    ]


class TestLocal:
    def test_self_join_vs_reference(self):
        query = three_pred_self_query()
        window = WindowSpec.count(100, 20)
        join = SPOJoin(query, window)
        ref = ReferenceWindowJoin(query, window)
        for t in rand3(400, ["T"], seed=80):
            got = sorted(m for __, m in join.process(t))
            assert got == ref.process(t), t.tid

    def test_cross_join_vs_nlj(self):
        query = three_pred_cross_query()
        window = WindowSpec.count(100, 20)
        spo = SPOJoin(query, window)
        nlj = NestedLoopJoin(query, window)
        for t in rand3(400, ["R", "S"], seed=81):
            assert sorted(m for __, m in spo.process(t)) == sorted(
                m for __, m in nlj.process(t)
            )

    def test_four_predicates(self):
        query = QuerySpec(
            "q4p",
            JoinType.SELF,
            [
                Predicate(0, Op.GE, 0),
                Predicate(1, Op.LE, 1),
                Predicate(2, Op.GT, 2),
                Predicate(0, Op.NE, 1),
            ],
        )
        window = WindowSpec.count(60, 15)
        spo = SPOJoin(query, window)
        nlj = NestedLoopJoin(query, window)
        for t in rand3(250, ["T"], seed=82, hi=6):
            assert sorted(m for __, m in spo.process(t)) == sorted(
                m for __, m in nlj.process(t)
            )


class TestDistributed:
    def test_topology_matches_local(self):
        query = three_pred_cross_query()
        window = WindowSpec.count(100, 20)
        raws = [
            RawTuple(t.stream, t.values, i * 0.001)
            for i, t in enumerate(rand3(400, ["R", "S"], seed=83))
        ]

        def source():
            for raw in raws:
                yield raw.event_time, raw

        local = SPOJoin(query, window)
        expected = {}
        for i, raw in enumerate(raws):
            t = StreamTuple(i, raw.stream, raw.values, raw.event_time)
            expected[i] = {m for __, m in local.process(t)}

        res = run_spo(source(), SPOConfig(query, window, num_pojoin_pes=1))
        got = defaultdict(set)
        for name in ("mutable_result", "immutable_result"):
            for record in res.records_named(name):
                got[record.payload["tid"]].update(record.payload["matches"])
        for i in expected:
            assert got[i] == expected[i], i
