"""Checkpoint/restore: a restored operator behaves bit-for-bit the same."""

import json
import random

import pytest

from repro.core import JoinType, Op, QuerySpec, SPOJoin, WindowSpec, make_tuple
from repro.core.checkpoint import checkpoint, restore

from ..conftest import interleaved_rs, random_tuples


def drive(join, tuples):
    return [sorted(m for __, m in join.process(t)) for t in tuples]


def roundtrip(query, window, warmup, future, **kwargs):
    """Run warmup, checkpoint, restore, and compare futures."""
    original = SPOJoin(query, window, **kwargs)
    for t in warmup:
        original.process(t)
    state = checkpoint(original)
    # The snapshot must survive a serialization boundary.
    state = json.loads(json.dumps(state))
    restored = restore(query, state)
    assert drive(original, future) == drive(restored, list(future))
    return original, restored


class TestRoundtrip:
    def test_self_join(self, q3_query):
        data = random_tuples(400, seed=120)
        roundtrip(q3_query, WindowSpec.count(100, 20), data[:250], data[250:])

    def test_cross_join(self, q1_query):
        data = interleaved_rs(400, seed=121)
        roundtrip(q1_query, WindowSpec.count(100, 20), data[:250], data[250:])

    def test_band_join(self, q2_query):
        data = random_tuples(300, seed=122)
        roundtrip(q2_query, WindowSpec.count(80, 20), data[:180], data[180:])

    def test_hash_evaluator(self, q3_query):
        data = random_tuples(300, seed=123)
        roundtrip(
            q3_query, WindowSpec.count(100, 20), data[:180], data[180:],
            evaluator="hash",
        )

    def test_sub_intervals(self, q1_query):
        data = interleaved_rs(300, seed=124)
        roundtrip(
            q1_query, WindowSpec.count(100, 20), data[:180], data[180:],
            sub_intervals=4,
        )

    def test_time_window(self, q3_query):
        data = random_tuples(300, seed=125)  # event_time = i * 0.001
        roundtrip(q3_query, WindowSpec.time(0.1, 0.02), data[:180], data[180:])

    def test_checkpoint_mid_merge_interval(self, q3_query):
        # Snapshot taken with a partially filled mutable window.
        data = random_tuples(235, seed=126)
        roundtrip(q3_query, WindowSpec.count(100, 20), data[:215], data[215:])

    def test_checkpoint_of_fresh_operator(self, q3_query):
        roundtrip(
            q3_query, WindowSpec.count(50, 10), [], random_tuples(100, seed=127)
        )


class TestStateContents:
    def test_stats_survive(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(100, 20))
        for t in random_tuples(150, seed=128):
            join.process(t)
        restored = restore(q3_query, checkpoint(join))
        assert restored.stats.tuples_processed == join.stats.tuples_processed
        assert restored.stats.matches_emitted == join.stats.matches_emitted
        assert restored.stats.merges == join.stats.merges
        assert restored.mutable_size() == join.mutable_size()
        assert restored.immutable_size() == join.immutable_size()

    def test_snapshot_is_json_serializable(self, q1_query):
        join = SPOJoin(q1_query, WindowSpec.count(60, 20))
        for t in interleaved_rs(120, seed=129):
            join.process(t)
        text = json.dumps(checkpoint(join))
        assert isinstance(text, str) and len(text) > 100

    def test_version_mismatch_rejected(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(50, 10))
        state = checkpoint(join)
        state["version"] = 999
        with pytest.raises(ValueError):
            restore(q3_query, state)
