"""Checkpoint/restore: a restored operator behaves bit-for-bit the same."""

import json
import random

import pytest

from repro.core import JoinType, Op, QuerySpec, SPOJoin, WindowSpec, make_tuple
from repro.core.checkpoint import checkpoint, restore

from ..conftest import interleaved_rs, random_tuples


def drive(join, tuples):
    return [sorted(m for __, m in join.process(t)) for t in tuples]


def chunks(seq, size):
    seq = list(seq)
    return [seq[i : i + size] for i in range(0, len(seq), size)]


def drive_many(join, tuples, batch_size):
    return [join.process_many(chunk) for chunk in chunks(tuples, batch_size)]


def roundtrip(query, window, warmup, future, **kwargs):
    """Run warmup, checkpoint, restore, and compare futures."""
    original = SPOJoin(query, window, **kwargs)
    for t in warmup:
        original.process(t)
    state = checkpoint(original)
    # The snapshot must survive a serialization boundary.
    state = json.loads(json.dumps(state))
    restored = restore(query, state)
    assert drive(original, future) == drive(restored, list(future))
    return original, restored


class TestRoundtrip:
    def test_self_join(self, q3_query):
        data = random_tuples(400, seed=120)
        roundtrip(q3_query, WindowSpec.count(100, 20), data[:250], data[250:])

    def test_cross_join(self, q1_query):
        data = interleaved_rs(400, seed=121)
        roundtrip(q1_query, WindowSpec.count(100, 20), data[:250], data[250:])

    def test_band_join(self, q2_query):
        data = random_tuples(300, seed=122)
        roundtrip(q2_query, WindowSpec.count(80, 20), data[:180], data[180:])

    def test_hash_evaluator(self, q3_query):
        data = random_tuples(300, seed=123)
        roundtrip(
            q3_query, WindowSpec.count(100, 20), data[:180], data[180:],
            evaluator="hash",
        )

    def test_sub_intervals(self, q1_query):
        data = interleaved_rs(300, seed=124)
        roundtrip(
            q1_query, WindowSpec.count(100, 20), data[:180], data[180:],
            sub_intervals=4,
        )

    def test_time_window(self, q3_query):
        data = random_tuples(300, seed=125)  # event_time = i * 0.001
        roundtrip(q3_query, WindowSpec.time(0.1, 0.02), data[:180], data[180:])

    def test_checkpoint_mid_merge_interval(self, q3_query):
        # Snapshot taken with a partially filled mutable window.
        data = random_tuples(235, seed=126)
        roundtrip(q3_query, WindowSpec.count(100, 20), data[:215], data[215:])

    def test_checkpoint_of_fresh_operator(self, q3_query):
        roundtrip(
            q3_query, WindowSpec.count(50, 10), [], random_tuples(100, seed=127)
        )


class TestBatchedRoundtrip:
    """Snapshots taken between ``process_many`` micro-batches restore
    bit-for-bit, including the vectorized immutable batches' state."""

    def _roundtrip_many(
        self, query, window, warmup, future, batch_size, **kwargs
    ):
        original = SPOJoin(query, window, **kwargs)
        for chunk in chunks(warmup, batch_size):
            original.process_many(chunk)
        state = json.loads(json.dumps(checkpoint(original)))
        restored = restore(query, state)
        assert drive_many(original, future, batch_size) == drive_many(
            restored, future, batch_size
        )
        return original, restored

    @pytest.mark.parametrize("batch_size", [7, 64])
    def test_self_join(self, q3_query, batch_size):
        data = random_tuples(400, seed=220)
        self._roundtrip_many(
            q3_query, WindowSpec.count(100, 20), data[:250], data[250:],
            batch_size,
        )

    @pytest.mark.parametrize("batch_size", [7, 64])
    def test_cross_join(self, q1_query, batch_size):
        data = interleaved_rs(400, seed=221)
        self._roundtrip_many(
            q1_query, WindowSpec.count(100, 20), data[:250], data[250:],
            batch_size,
        )

    @pytest.mark.parametrize("batch_size", [7, 64])
    def test_time_window(self, q3_query, batch_size):
        data = random_tuples(300, seed=222)  # event_time = i * 0.001
        self._roundtrip_many(
            q3_query, WindowSpec.time(0.1, 0.02), data[:180], data[180:],
            batch_size,
        )

    def test_snapshot_mid_batch_stream(self, q3_query):
        # Warmup batched, future scalar: the snapshot point does not care
        # how the tuples around it were grouped.
        data = random_tuples(300, seed=223)
        original = SPOJoin(q3_query, WindowSpec.count(100, 20))
        for chunk in chunks(data[:185], 7):
            original.process_many(chunk)
        restored = restore(
            q3_query, json.loads(json.dumps(checkpoint(original)))
        )
        assert drive(original, data[185:]) == drive(restored, data[185:])

    def test_batched_stats_survive(self, q1_query):
        join = SPOJoin(q1_query, WindowSpec.count(100, 20))
        for chunk in chunks(interleaved_rs(260, seed=224), 7):
            join.process_many(chunk)
        restored = restore(q1_query, checkpoint(join))
        assert restored.stats.tuples_processed == join.stats.tuples_processed
        assert restored.stats.matches_emitted == join.stats.matches_emitted
        assert restored.stats.merges == join.stats.merges


class TestBptreeOrder:
    def test_order_survives_roundtrip(self, q3_query):
        data = random_tuples(300, seed=225)
        original, restored = roundtrip(
            q3_query, WindowSpec.count(100, 20), data[:180], data[180:],
            bptree_order=8,
        )
        assert original.bptree_order == restored.bptree_order == 8

    def test_legacy_snapshot_defaults_to_64(self, q3_query):
        # Version-1 snapshots written before the order was serialized
        # carry no "bptree_order" key; restore falls back to the default.
        join = SPOJoin(q3_query, WindowSpec.count(50, 10))
        state = checkpoint(join)
        del state["bptree_order"]
        restored = restore(q3_query, state)
        assert restored.bptree_order == 64


class TestStateContents:
    def test_stats_survive(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(100, 20))
        for t in random_tuples(150, seed=128):
            join.process(t)
        restored = restore(q3_query, checkpoint(join))
        assert restored.stats.tuples_processed == join.stats.tuples_processed
        assert restored.stats.matches_emitted == join.stats.matches_emitted
        assert restored.stats.merges == join.stats.merges
        assert restored.mutable_size() == join.mutable_size()
        assert restored.immutable_size() == join.immutable_size()

    def test_snapshot_is_json_serializable(self, q1_query):
        join = SPOJoin(q1_query, WindowSpec.count(60, 20))
        for t in interleaved_rs(120, seed=129):
            join.process(t)
        text = json.dumps(checkpoint(join))
        assert isinstance(text, str) and len(text) > 100

    def test_version_mismatch_rejected(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(50, 10))
        state = checkpoint(join)
        state["version"] = 999
        with pytest.raises(ValueError):
            restore(q3_query, state)
