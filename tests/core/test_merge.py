"""Merge step: Algorithm 2 (permutation) and Algorithm 3 (offsets)."""

import random
from bisect import bisect_left, bisect_right

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JoinType,
    Op,
    QuerySpec,
    build_merge_batch,
    compute_offsets,
    compute_permutation,
    sorted_run_from_tree,
)
from repro.indexes import BPlusTree, SortedRun


def tree_of(entries):
    tree = BPlusTree(order=8)
    for v, tid in entries:
        tree.insert(v, tid)
    return tree


class TestSortedRunFromTree:
    def test_leaf_scan_is_sorted(self):
        rng = random.Random(0)
        entries = [(rng.randint(0, 30), i) for i in range(200)]
        run = sorted_run_from_tree(tree_of(entries))
        assert list(zip(run.values, run.tids)) == sorted(entries)

    def test_empty_tree(self):
        run = sorted_run_from_tree(BPlusTree())
        assert len(run) == 0


class TestPermutation:
    def test_paper_semantics(self):
        # run_a sorts tuples by field a; run_b by field b.  P[j] is the
        # position in run_a of the j-th tuple of run_b.
        run_a = SortedRun([1, 2, 3], [10, 11, 12])
        run_b = SortedRun([5, 6, 7], [12, 10, 11])
        assert compute_permutation(run_a, run_b) == [2, 0, 1]

    def test_identity_when_orders_agree(self):
        run = SortedRun([1, 2, 3], [0, 1, 2])
        assert compute_permutation(run, run) == [0, 1, 2]

    def test_rejects_mismatched_runs(self):
        with pytest.raises(ValueError):
            compute_permutation(SortedRun([1], [0]), SortedRun([], []))

    @settings(max_examples=50, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=40,
        )
    )
    def test_permutation_is_bijection(self, pairs):
        tuples = [(a, b, tid) for tid, (a, b) in enumerate(pairs)]
        run_a = SortedRun.from_unsorted_entries([(a, tid) for a, __, tid in tuples])
        run_b = SortedRun.from_unsorted_entries([(b, tid) for __, b, tid in tuples])
        perm = compute_permutation(run_a, run_b)
        assert sorted(perm) == list(range(len(pairs)))
        # P maps each tuple's b-position to its a-position.
        for j, tid in enumerate(run_b.tids):
            assert run_a.tids[perm[j]] == tid


class TestOffsetArray:
    def test_algorithm3_semantics(self):
        from repro.core import compute_offset_array

        # offset[i] = first position in the opposite run with key >= k_r.
        assert compute_offset_array([1, 3, 5], [2, 3, 3, 6]) == [0, 1, 3]
        assert compute_offset_array([9], [2, 3]) == [2]  # past the end
        assert compute_offset_array([], [1, 2]) == []
        assert compute_offset_array([1, 2], []) == [0, 0]

    def test_matches_bisect_left(self):
        from bisect import bisect_left as bl

        from repro.core import compute_offset_array

        import random

        rng = random.Random(0)
        left = sorted(rng.randint(0, 20) for __ in range(50))
        right = sorted(rng.randint(0, 20) for __ in range(60))
        assert compute_offset_array(left, right) == [bl(right, k) for k in left]


class TestOffsets:
    def test_paper_example_semantics(self):
        # Offset = relative location of each left key in the right run.
        lower, upper = compute_offsets([1, 3, 5], [2, 3, 3, 6])
        assert lower == [0, 1, 3]  # first right >= left key
        assert upper == [0, 3, 3]  # first right > left key

    def test_empty_right(self):
        lower, upper = compute_offsets([1, 2], [])
        assert lower == [0, 0]
        assert upper == [0, 0]

    def test_empty_left(self):
        assert compute_offsets([], [1, 2]) == ([], [])

    @settings(max_examples=60, deadline=None)
    @given(
        left=st.lists(st.integers(min_value=-15, max_value=15), max_size=40),
        right=st.lists(st.integers(min_value=-15, max_value=15), max_size=40),
    )
    def test_offsets_equal_bisect(self, left, right):
        left, right = sorted(left), sorted(right)
        lower, upper = compute_offsets(left, right)
        for i, key in enumerate(left):
            assert lower[i] == bisect_left(right, key)
            assert upper[i] == bisect_right(right, key)


class TestMergeBatch:
    def test_self_join_batch(self):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, Op.GT, Op.LT)
        trees = [tree_of([(3, 0), (1, 1)]), tree_of([(5, 0), (9, 1)])]
        batch = build_merge_batch(0, q, trees)
        assert not batch.is_two_sided
        assert len(batch) == 2
        assert batch.left.permutation is not None
        assert batch.side(True) is batch.left

    def test_cross_join_batch_has_offsets(self):
        q = QuerySpec.two_inequalities("q", JoinType.CROSS, Op.LT, Op.GT)
        left = [tree_of([(1, 0)]), tree_of([(2, 0)])]
        right = [tree_of([(3, 1)]), tree_of([(4, 1)])]
        batch = build_merge_batch(1, q, left, right)
        assert batch.is_two_sided
        assert set(batch.offsets) == {
            (0, "lr"),
            (0, "rl"),
            (1, "lr"),
            (1, "rl"),
        }
        assert batch.side(True) is batch.right
        assert batch.side(False) is batch.left

    def test_memory_accounting(self):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, Op.GT, Op.LT)
        small = build_merge_batch(0, q, [tree_of([(1, 0)]), tree_of([(1, 0)])])
        entries = [(i, i) for i in range(100)]
        big = build_merge_batch(
            1, q, [tree_of(entries), tree_of(entries)]
        )
        assert small.memory_bits() < big.memory_bits()
