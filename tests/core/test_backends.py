"""Pluggable immutable backends: registry, SQL engine, and parity.

The registry decouples SPO-Join from the concrete immutable
representation; the embedded-SQL backend is a genuinely different engine
(indexed range queries over SQLite tables) whose results must be
*bit-identical* to the in-memory PO-Join arrays — the strongest
correctness oracle the suite has for the permutation/offset arithmetic.
Checkpoint round-trips must preserve the backend choice.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JoinType,
    Op,
    QuerySpec,
    SPOJoin,
    WindowSpec,
    build_merge_batch,
)
from repro.core.arena import ArenaSlice
from repro.core.backend_sql import SQLImmutableBatch
from repro.core.checkpoint import checkpoint, restore
from repro.core.immutable import (
    ImmutableBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.pojoin_numpy import VectorPOJoinBatch
from repro.indexes import BPlusTree

from ..conftest import ALL_OPS, interleaved_rs, random_tuples

CHUNKINGS = [1, 7, 64]


def batched_pairs(join, tuples, chunk):
    pairs = []
    for i in range(0, len(tuples), chunk):
        pairs.extend(join.process_many(ArenaSlice.of(tuples[i : i + chunk])))
    return pairs


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"memory", "po_scalar", "sql"} <= set(backend_names())

    def test_get_backend_satisfies_protocol(self):
        for name in ("memory", "po_scalar", "sql"):
            backend = get_backend(name)
            assert isinstance(backend, ImmutableBackend)
            assert backend.name == name
            assert callable(backend.batch_factory())

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(KeyError, match="memory"):
            get_backend("duckdb")

    def test_register_custom_backend(self):
        class Fake:
            name = "fake-for-test"

            def batch_factory(self, **options):
                return lambda query, merge: None

        register_backend(Fake())
        try:
            assert get_backend("fake-for-test").name == "fake-for-test"
        finally:
            from repro.core import immutable

            del immutable._BACKENDS["fake-for-test"]

    def test_join_rejects_backend_plus_factory(self, q3_query):
        with pytest.raises(ValueError):
            SPOJoin(
                q3_query,
                WindowSpec.count(10, 2),
                backend="memory",
                batch_factory=lambda q, m: None,
            )

    def test_backend_selects_batch_class(self, q3_query):
        for backend, cls in (("memory", VectorPOJoinBatch),
                             ("sql", SQLImmutableBatch)):
            join = SPOJoin(
                q3_query, WindowSpec.count(40, 8), backend=backend
            )
            for t in random_tuples(60, seed=50):
                join.process(t)
            assert join.immutable.batches
            assert all(
                isinstance(b, cls) for b in join.immutable.batches
            )


# ----------------------------------------------------------------------
# SQL backend unit behaviour
# ----------------------------------------------------------------------
def build_pair(query, tuples):
    """Self-join merge batch over ``tuples`` (one tree per predicate)."""
    trees = []
    for p in query.predicates:
        tree = BPlusTree(order=8)
        for t in tuples:
            tree.insert(t.values[p.right_field], t.tid)
        trees.append(tree)
    return build_merge_batch(0, query, trees, None)


class TestSQLBatch:
    @pytest.mark.parametrize("spill", [False, True])
    def test_matches_memory_backend_per_probe(self, q3_query, spill):
        stored = random_tuples(80, seed=51)
        merge = build_pair(q3_query, stored)
        vec = VectorPOJoinBatch(q3_query, merge)
        sql = SQLImmutableBatch(q3_query, merge, spill=spill)
        try:
            for probe in random_tuples(40, start_tid=1000, seed=52):
                assert sql.probe(probe, True) == vec.probe(probe, True)
            probes = random_tuples(25, start_tid=2000, seed=53)
            flags = [True] * len(probes)
            assert sql.probe_batch(probes, flags) == vec.probe_batch(
                probes, flags
            )
        finally:
            sql.close()

    @pytest.mark.parametrize(
        "op1", ALL_OPS, ids=lambda op: f"op1={op.value}"
    )
    def test_all_operators_match(self, op1):
        query = QuerySpec.two_inequalities("Q", JoinType.SELF, op1, Op.LT)
        stored = random_tuples(60, seed=54, hi=10)
        merge = build_pair(query, stored)
        vec = VectorPOJoinBatch(query, merge)
        sql = SQLImmutableBatch(query, merge)
        for probe in random_tuples(30, start_tid=500, seed=55, hi=10):
            assert sql.probe(probe, True) == vec.probe(probe, True)

    def test_band_query_matches(self, q2_query):
        stored = random_tuples(60, seed=56)
        merge = build_pair(q2_query, stored)
        vec = VectorPOJoinBatch(q2_query, merge)
        sql = SQLImmutableBatch(q2_query, merge)
        for probe in random_tuples(30, start_tid=700, seed=57):
            assert sql.probe(probe, True) == vec.probe(probe, True)

    def test_empty_batch(self, q3_query):
        merge = build_pair(q3_query, [])
        sql = SQLImmutableBatch(q3_query, merge)
        probe = random_tuples(1, seed=58)[0]
        assert sql.probe(probe, True) == []
        assert len(sql) == 0

    def test_accounting_is_positive_and_honest(self, q3_query):
        stored = random_tuples(120, seed=59)
        merge = build_pair(q3_query, stored)
        sql = SQLImmutableBatch(q3_query, merge)
        payload = (len(q3_query.predicates) + 1) * 64 * len(merge)
        assert sql.memory_bits() >= payload
        assert sql.index_overhead_bits() == sql.memory_bits() - payload

    def test_close_is_idempotent(self, q3_query):
        sql = SQLImmutableBatch(q3_query, build_pair(q3_query, []))
        sql.close()
        sql.close()

    def test_duplicate_tids_rejected(self, q3_query):
        # Stream tids are unique by contract; the memory backend
        # silently tolerates a double-fed tuple while the SQL backend's
        # ``tid INTEGER PRIMARY KEY`` rejects it.  Keep that rejection:
        # it is a free state-integrity assertion that catches corrupted
        # merge batches (or a harness replaying an overlapping chunk).
        import sqlite3

        dup = random_tuples(8, seed=53)
        merge = build_pair(q3_query, dup + dup[:1])
        VectorPOJoinBatch(q3_query, merge)  # memory: accepted silently
        with pytest.raises(sqlite3.IntegrityError):
            SQLImmutableBatch(q3_query, merge)


# ----------------------------------------------------------------------
# End-to-end backend parity (the ISSUE acceptance gate, small scale)
# ----------------------------------------------------------------------
class TestEndToEndParity:
    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_self_join_parity(self, q3_query, chunk):
        data = random_tuples(300, seed=60)
        window = WindowSpec.count(80, 16)
        mem = batched_pairs(SPOJoin(q3_query, window), data, chunk)
        sql = batched_pairs(
            SPOJoin(q3_query, window, backend="sql"), data, chunk
        )
        assert mem == sql

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_cross_join_parity(self, q1_query, chunk):
        data = interleaved_rs(300, seed=61)
        window = WindowSpec.count(80, 16)
        mem = batched_pairs(SPOJoin(q1_query, window), data, chunk)
        sql = batched_pairs(
            SPOJoin(q1_query, window, backend="sql"), data, chunk
        )
        assert mem == sql

    def test_spill_parity(self, q3_query):
        data = random_tuples(200, seed=62)
        window = WindowSpec.count(60, 12)
        mem = batched_pairs(SPOJoin(q3_query, window), data, 32)
        sql = batched_pairs(
            SPOJoin(
                q3_query,
                window,
                backend="sql",
                backend_options={"spill": True},
            ),
            data,
            32,
        )
        assert mem == sql


# ----------------------------------------------------------------------
# Checkpoint/restore of arena-backed joins (satellite property test)
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=25)
@given(
    chunk=st.sampled_from(CHUNKINGS),
    backend=st.sampled_from(["memory", "sql"]),
    seed=st.integers(min_value=0, max_value=50),
    cut=st.integers(min_value=10, max_value=190),
)
def test_checkpoint_restore_bit_identical(chunk, backend, seed, cut):
    """Restored arena-backed joins replay the future bit-identically.

    The oracle is the scalar object path of a never-checkpointed twin:
    warmup through arena-backed ``process_many``, checkpoint across a
    JSON serialisation boundary, then both joins must agree exactly on
    the remaining stream.
    """
    query = QuerySpec.two_inequalities("Q3", JoinType.SELF, Op.GT, Op.LT)
    window = WindowSpec.count(50, 10)
    data = random_tuples(200, seed=seed)
    warmup, future = data[:cut], data[cut:]

    reference = SPOJoin(query, window)
    expected = []
    for t in data:
        expected.extend(reference.process(t))

    original = SPOJoin(query, window, backend=backend)
    observed = batched_pairs(original, warmup, chunk)
    state = json.loads(json.dumps(checkpoint(original)))
    restored = restore(query, state)
    assert restored.backend == backend
    observed.extend(batched_pairs(restored, future, chunk))
    assert observed == expected
