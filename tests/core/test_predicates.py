"""Predicates: operator semantics, sorted-array intervals, value bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BandPredicate, Op, Predicate

ALL_OPS = [Op.LT, Op.GT, Op.LE, Op.GE, Op.EQ, Op.NE]


class TestOp:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            (Op.LT, 1, 2, True),
            (Op.LT, 2, 2, False),
            (Op.GT, 3, 2, True),
            (Op.GT, 2, 2, False),
            (Op.LE, 2, 2, True),
            (Op.GE, 2, 2, True),
            (Op.EQ, 2, 2, True),
            (Op.EQ, 2, 3, False),
            (Op.NE, 2, 3, True),
            (Op.NE, 2, 2, False),
        ],
    )
    def test_holds(self, op, left, right, expected):
        assert op.holds(left, right) is expected

    @pytest.mark.parametrize("op", ALL_OPS)
    def test_flip_is_involution(self, op):
        assert op.flipped.flipped is op

    @settings(max_examples=50, deadline=None)
    @given(
        left=st.integers(min_value=-10, max_value=10),
        right=st.integers(min_value=-10, max_value=10),
        op=st.sampled_from(ALL_OPS),
    )
    def test_flip_swaps_operands(self, left, right, op):
        assert op.holds(left, right) == op.flipped.holds(right, left)


class TestProbeIntervals:
    @pytest.mark.parametrize("op", ALL_OPS)
    @pytest.mark.parametrize("probe_is_left", [True, False])
    @pytest.mark.parametrize("probe", [-1, 0, 2, 3, 7, 11])
    def test_intervals_match_direct_evaluation(self, op, probe_is_left, probe):
        stored = [0, 2, 2, 3, 5, 5, 5, 9, 10]
        pred = Predicate(0, op, 0)
        intervals = pred.probe_intervals(probe, stored, probe_is_left)
        selected = {
            pos for lo, hi in intervals for pos in range(lo, hi)
        }
        for pos, value in enumerate(stored):
            if probe_is_left:
                expected = op.holds(probe, value)
            else:
                expected = op.holds(value, probe)
            assert (pos in selected) == expected, (op, probe, pos)

    def test_empty_stored(self):
        pred = Predicate(0, Op.LT, 0)
        assert pred.probe_intervals(5, [], True) == [(0, 0)]

    @settings(max_examples=80, deadline=None)
    @given(
        stored=st.lists(st.integers(min_value=-10, max_value=10), max_size=40),
        probe=st.integers(min_value=-12, max_value=12),
        op=st.sampled_from(ALL_OPS),
        probe_is_left=st.booleans(),
    )
    def test_property_intervals(self, stored, probe, op, probe_is_left):
        stored = sorted(stored)
        pred = Predicate(0, op, 0)
        selected = {
            pos
            for lo, hi in pred.probe_intervals(probe, stored, probe_is_left)
            for pos in range(lo, hi)
        }
        for pos, value in enumerate(stored):
            left, right = (probe, value) if probe_is_left else (value, probe)
            assert (pos in selected) == op.holds(left, right)


class TestProbeBounds:
    @pytest.mark.parametrize("op", ALL_OPS)
    @pytest.mark.parametrize("probe_is_left", [True, False])
    def test_bounds_agree_with_intervals(self, op, probe_is_left):
        stored = [0, 1, 3, 3, 4, 8, 9]
        pred = Predicate(0, op, 0)
        probe = 3
        from_intervals = {
            stored[pos]
            for lo, hi in pred.probe_intervals(probe, stored, probe_is_left)
            for pos in range(lo, hi)
        }
        from_bounds = set()
        for lo, hi, lo_inc, hi_inc in pred.probe_bounds(probe, probe_is_left):
            for v in stored:
                above = lo is None or v > lo or (lo_inc and v == lo)
                below = hi is None or v < hi or (hi_inc and v == hi)
                if above and below:
                    from_bounds.add(v)
        assert from_bounds == from_intervals


class TestBandPredicate:
    def test_holds_exclusive(self):
        band = BandPredicate(0, 0, width=2.0)
        assert band.holds(5.0, 6.5)
        assert not band.holds(5.0, 7.0)
        assert band.holds(5.0, 3.5)

    def test_holds_inclusive(self):
        band = BandPredicate(0, 0, width=2.0, inclusive=True)
        assert band.holds(5.0, 7.0)
        assert not band.holds(5.0, 7.1)

    def test_symmetry(self):
        band = BandPredicate(0, 0, width=1.5)
        assert band.holds(2.0, 3.0) == band.holds(3.0, 2.0)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BandPredicate(0, 0, width=-1.0)

    @settings(max_examples=60, deadline=None)
    @given(
        stored=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            max_size=30,
        ),
        probe=st.floats(min_value=-55, max_value=55, allow_nan=False),
        width=st.floats(min_value=0, max_value=20, allow_nan=False),
        inclusive=st.booleans(),
    )
    def test_intervals_match_holds(self, stored, probe, width, inclusive):
        stored = sorted(stored)
        band = BandPredicate(0, 0, width=width, inclusive=inclusive)
        selected = {
            pos
            for lo, hi in band.probe_intervals(probe, stored, True)
            for pos in range(lo, hi)
        }
        for pos, value in enumerate(stored):
            assert (pos in selected) == band.holds(probe, value)

    def test_probe_bounds(self):
        band = BandPredicate(0, 0, width=2.0)
        [(lo, hi, lo_inc, hi_inc)] = band.probe_bounds(5.0, True)
        assert (lo, hi) == (3.0, 7.0)
        assert not lo_inc and not hi_inc
