"""SQL front-end: the paper's three queries verbatim, plus the dialect."""

import pytest

from repro.core import JoinType, Op, SPOJoin, WindowKind, WindowSpec, make_tuple
from repro.core.predicates import BandPredicate
from repro.core.sql import SQLParseError, parse_query

Q1_SQL = """
SELECT R.POW_ID, R.COOL_ID, S.POW_ID, S.COOL_ID
FROM R, S
WHERE R.POWER<S.POWER AND R.COOL>S.COOL
WINDOW AS (SLIDE INTERVAL '10' ON '60')
"""

Q2_SQL = """
SELECT tripId, time FROM taxi_trips
WHERE ABS(start_LON1 - start_LON2) < 0.03
AND ABS(start_LAT1 - start_LAT2) < 0.03
WINDOW AS (SLIDE INTERVAL '1min' ON '5min')
"""

Q3_SQL = """
SELECT trip.ID FROM NYC
WHERE NYC.trip_dist1 > NYC.trip_dist2
AND NYC.trip_fare1 < NYC.trip_fare2
WINDOW AS ( SLIDE INTERVAL '10K' ON '100K');
"""


class TestPaperQueries:
    def test_q1(self):
        query, window = parse_query(Q1_SQL, {"POWER": 0, "COOL": 1})
        assert query.join_type is JoinType.CROSS
        assert [p.op for p in query.predicates] == [Op.LT, Op.GT]
        assert [(p.left_field, p.right_field) for p in query.predicates] == [
            (0, 0),
            (1, 1),
        ]
        assert window.kind is WindowKind.COUNT
        assert (window.length, window.slide) == (60, 10)

    def test_q2(self):
        query, window = parse_query(
            Q2_SQL, {"start_LON": 0, "start_LAT": 1}
        )
        assert query.join_type is JoinType.BAND
        assert all(isinstance(p, BandPredicate) for p in query.predicates)
        assert query.predicates[0].width == pytest.approx(0.03)
        assert not query.predicates[0].inclusive
        assert window.kind is WindowKind.TIME
        assert (window.length, window.slide) == (300.0, 60.0)

    def test_q3(self):
        query, window = parse_query(
            Q3_SQL, {"trip_dist": 0, "trip_fare": 1}
        )
        assert query.join_type is JoinType.SELF
        assert [p.op for p in query.predicates] == [Op.GT, Op.LT]
        assert (window.length, window.slide) == (100_000, 10_000)

    def test_q3_parsed_query_actually_joins(self):
        query, __ = parse_query(Q3_SQL, {"trip_dist": 0, "trip_fare": 1})
        join = SPOJoin(query, WindowSpec.count(50, 10))
        join.process(make_tuple(0, "NYC", 1.0, 10.0))
        # dist 2.0 > 1.0 and fare 5.0 < 10.0: matches tuple 0.
        assert join.process(make_tuple(1, "NYC", 2.0, 5.0)) == [(1, 0)]


class TestDialect:
    SCHEMA = {"a": 0, "b": 1}

    def test_operator_normalization(self):
        # S on the left of the comparison still yields an R-oriented
        # predicate.
        query, __ = parse_query(
            "SELECT * FROM R, S WHERE S.a > R.a", self.SCHEMA
        )
        pred = query.predicates[0]
        assert pred.op is Op.LT  # R.a < S.a

    @pytest.mark.parametrize(
        "op_text,expected",
        [("<", Op.LT), (">", Op.GT), ("<=", Op.LE), (">=", Op.GE),
         ("!=", Op.NE), ("<>", Op.NE), ("=", Op.EQ)],
    )
    def test_all_operators(self, op_text, expected):
        query, __ = parse_query(
            f"SELECT * FROM R, S WHERE R.a {op_text} S.a", self.SCHEMA
        )
        assert query.predicates[0].op is expected

    def test_equality_only_is_equi_join(self):
        query, __ = parse_query(
            "SELECT * FROM R, S WHERE R.a = S.a", self.SCHEMA
        )
        assert query.join_type is JoinType.EQUI

    def test_three_conjuncts(self):
        query, __ = parse_query(
            "SELECT * FROM R, S WHERE R.a < S.a AND R.b > S.b AND R.a != S.b",
            self.SCHEMA,
        )
        assert query.num_predicates == 3

    def test_missing_window_uses_default(self):
        default = WindowSpec.count(100, 10)
        __, window = parse_query(
            "SELECT * FROM R, S WHERE R.a < S.a", self.SCHEMA,
            default_window=default,
        )
        assert window is default

    def test_case_insensitivity(self):
        query, window = parse_query(
            "select * from r, s where r.A < s.A "
            "window as (slide interval '5' on '20')",
            self.SCHEMA,
        )
        assert query.predicates[0].op is Op.LT
        assert window.slide == 5

    def test_inclusive_band(self):
        query, __ = parse_query(
            "SELECT * FROM T WHERE ABS(a1 - a2) <= 1.5", self.SCHEMA
        )
        assert query.predicates[0].inclusive

    def test_count_suffixes(self):
        __, window = parse_query(
            "SELECT * FROM R, S WHERE R.a < S.a "
            "WINDOW AS (SLIDE INTERVAL '2K' ON '1M')",
            self.SCHEMA,
        )
        assert (window.length, window.slide) == (1_000_000, 2_000)

    def test_duration_units(self):
        __, window = parse_query(
            "SELECT * FROM R, S WHERE R.a < S.a "
            "WINDOW AS (SLIDE INTERVAL '500ms' ON '2h')",
            self.SCHEMA,
        )
        assert window.kind is WindowKind.TIME
        assert (window.length, window.slide) == (7200.0, 0.5)


class TestErrors:
    SCHEMA = {"a": 0, "b": 1}

    @pytest.mark.parametrize(
        "sql,hint",
        [
            ("SELECT * FROM R, S", "SELECT/FROM/WHERE"),
            ("SELECT * FROM R, S, T WHERE R.a < S.a", "one or two relations"),
            ("SELECT * FROM R, S WHERE R.zzz < S.a", "unknown column"),
            ("SELECT * FROM R, S WHERE X.a < S.a", "unknown relation"),
            ("SELECT * FROM R, S WHERE R.a < R.b", "same stream"),
            ("SELECT * FROM R, S WHERE R.a BETWEEN 1 AND 2", "cannot parse"),
            ("SELECT * FROM T WHERE a < b", "which stream"),
            (
                "SELECT * FROM R, S WHERE R.a < S.a "
                "WINDOW AS (SLIDE INTERVAL '10' ON '5min')",
                "both counts or both durations",
            ),
            (
                "SELECT * FROM R, S WHERE R.a < S.a "
                "WINDOW AS (SLIDE INTERVAL '10parsec' ON '20parsec')",
                "unknown window unit",
            ),
            (
                "SELECT * FROM R, S WHERE R.a < S.a "
                "WINDOW AS (SLIDE INTERVAL '50' ON '10')",
                "invalid window",
            ),
        ],
    )
    def test_rejections(self, sql, hint):
        with pytest.raises(SQLParseError, match=re_escape_loose(hint)):
            parse_query(sql, self.SCHEMA)


def re_escape_loose(text):
    import re

    return ".*".join(re.escape(part) for part in text.split())
