"""SPO-Join end-to-end (local): Algorithm 1 vs the reference window join."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JoinType,
    Op,
    QuerySpec,
    SPOJoin,
    WindowSpec,
    make_tuple,
)

from ..conftest import ReferenceWindowJoin, interleaved_rs, random_tuples

ALL_OPS = [Op.LT, Op.GT, Op.LE, Op.GE, Op.EQ, Op.NE]


def compare_against_reference(query, tuples, window, sub_intervals=1, **kwargs):
    join = SPOJoin(query, window, sub_intervals=sub_intervals, **kwargs)
    ref = ReferenceWindowJoin(query, window, sub_intervals)
    for t in tuples:
        got = sorted(m for __, m in join.process(t))
        exp = ref.process(t)
        assert got == exp, (t.tid, got, exp)
    return join


class TestSelfJoin:
    def test_q3_shape_vs_reference(self, q3_query):
        tuples = random_tuples(400, seed=0)
        join = compare_against_reference(q3_query, tuples, WindowSpec.count(100, 20))
        assert join.stats.tuples_processed == 400
        assert join.stats.merges == 20
        assert join.stats.expired_batches > 0

    @pytest.mark.parametrize("op1,op2", [(Op.GE, Op.LE), (Op.NE, Op.NE), (Op.LT, Op.LT)])
    def test_other_operator_pairs(self, op1, op2):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, op1, op2)
        tuples = random_tuples(250, seed=1, hi=8)
        compare_against_reference(q, tuples, WindowSpec.count(60, 15))

    def test_band_join_vs_reference(self, q2_query):
        tuples = random_tuples(300, seed=2)
        compare_against_reference(q2_query, tuples, WindowSpec.count(80, 20))

    def test_sub_intervals(self, q3_query):
        tuples = random_tuples(300, seed=3)
        join = compare_against_reference(
            q3_query, tuples, WindowSpec.count(100, 20), sub_intervals=4
        )
        assert join.policy.delta == 5

    def test_hash_evaluator(self, q3_query):
        tuples = random_tuples(250, seed=4)
        compare_against_reference(
            q3_query, tuples, WindowSpec.count(100, 20), evaluator="hash"
        )

    def test_time_based_window(self, q3_query):
        tuples = random_tuples(300, seed=5)  # event_time = i * 0.001
        compare_against_reference(q3_query, tuples, WindowSpec.time(0.1, 0.02))


class TestCrossJoin:
    def test_q1_shape_vs_reference(self, q1_query):
        tuples = interleaved_rs(400, seed=6)
        join = compare_against_reference(q1_query, tuples, WindowSpec.count(100, 20))
        assert join.is_two_stream
        assert join.stats.mutable_matches > 0
        assert join.stats.immutable_matches > 0

    def test_no_offsets_variant(self, q1_query):
        tuples = interleaved_rs(300, seed=7)
        compare_against_reference(
            q1_query, tuples, WindowSpec.count(100, 20), use_offsets=False
        )

    def test_equi_join(self):
        q = QuerySpec.equi("qe")
        rng = random.Random(8)
        tuples = [
            make_tuple(i, rng.choice(["R", "S"]), rng.randrange(10))
            for i in range(300)
        ]
        compare_against_reference(q, tuples, WindowSpec.count(100, 20))

    def test_one_sided_input(self, q1_query):
        # Only R tuples: everything matches nothing but nothing crashes.
        tuples = [make_tuple(i, "R", i % 7, i % 5) for i in range(150)]
        join = SPOJoin(q1_query, WindowSpec.count(50, 10))
        for t in tuples:
            assert join.process(t) == []


class TestMergeMechanics:
    def test_merge_moves_tuples_to_immutable(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(100, 20))
        for t in random_tuples(20, seed=9):
            join.process(t)
        assert join.mutable_size() == 0  # exactly at threshold -> merged
        assert join.immutable_size() == 20
        assert join.stats.merges == 1

    def test_empty_merge_skipped(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(100, 20))
        assert join.merge() is None
        assert join.stats.merges == 0

    def test_window_size_bounded(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(100, 20))
        for t in random_tuples(1000, seed=10):
            join.process(t)
        total = join.mutable_size() + join.immutable_size()
        assert total <= 100
        assert total >= 80  # window stays near W_L

    def test_memory_accounting_grows_then_stabilizes(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(100, 20))
        sizes = []
        for i, t in enumerate(random_tuples(600, seed=11)):
            join.process(t)
            if i % 100 == 99:
                sizes.append(join.memory_bits())
        assert sizes[0] > 0
        # After the window fills, memory should stop growing.
        assert max(sizes[2:]) <= 2 * min(sizes[2:])

    def test_stats_track_matches(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(100, 20))
        emitted = 0
        for t in random_tuples(300, seed=12):
            emitted += len(join.process(t))
        assert join.stats.matches_emitted == emitted
        assert (
            join.stats.mutable_matches + join.stats.immutable_matches == emitted
        )


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        vals=st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)),
            min_size=1,
            max_size=120,
        ),
        op1=st.sampled_from(ALL_OPS),
        op2=st.sampled_from(ALL_OPS),
        window_len=st.integers(min_value=10, max_value=60),
        num_slides=st.integers(min_value=1, max_value=5),
    )
    def test_self_join_any_config(self, vals, op1, op2, window_len, num_slides):
        slide = max(1, window_len // num_slides)
        q = QuerySpec.two_inequalities("q", JoinType.SELF, op1, op2)
        tuples = [make_tuple(i, "T", a, b) for i, (a, b) in enumerate(vals)]
        compare_against_reference(q, tuples, WindowSpec.count(window_len, slide))
