"""Batch IE-Join vs the nested-loop reference, across all operators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JoinType,
    Op,
    Predicate,
    QuerySpec,
    ie_join,
    ie_self_join,
    make_tuple,
    nested_loop_join,
    nested_loop_self_join,
)
from repro.core.iejoin import ie_join_count, ie_self_join_count

ALL_OPS = [Op.LT, Op.GT, Op.LE, Op.GE, Op.EQ, Op.NE]


def rand_tuples(stream, n, start_tid, seed, lo=0, hi=15):
    rng = random.Random(seed)
    return [
        make_tuple(start_tid + i, stream, rng.randint(lo, hi), rng.randint(lo, hi))
        for i in range(n)
    ]


class TestTwoRelation:
    @pytest.mark.parametrize("op1", ALL_OPS)
    @pytest.mark.parametrize("op2", ALL_OPS)
    def test_all_operator_pairs(self, op1, op2):
        q = QuerySpec.two_inequalities("q", JoinType.CROSS, op1, op2)
        left = rand_tuples("R", 25, 0, seed=hash((op1, op2)) % 1000)
        right = rand_tuples("S", 25, 100, seed=hash((op2, op1)) % 1000 + 1)
        assert sorted(ie_join(left, right, q)) == sorted(
            nested_loop_join(left, right, q)
        )

    def test_empty_inputs(self):
        q = QuerySpec.two_inequalities("q", JoinType.CROSS, Op.LT, Op.GT)
        right = rand_tuples("S", 10, 0, seed=2)
        assert ie_join([], right, q) == []
        assert ie_join(right, [], q) == []
        assert ie_join([], [], q) == []

    def test_count_matches_pairs(self):
        q = QuerySpec.two_inequalities("q", JoinType.CROSS, Op.LE, Op.GE)
        left = rand_tuples("R", 30, 0, seed=3)
        right = rand_tuples("S", 30, 100, seed=4)
        assert ie_join_count(left, right, q) == len(ie_join(left, right, q))

    def test_all_duplicates(self):
        q = QuerySpec.two_inequalities("q", JoinType.CROSS, Op.LE, Op.GE)
        left = [make_tuple(i, "R", 5, 5) for i in range(10)]
        right = [make_tuple(100 + i, "S", 5, 5) for i in range(10)]
        assert len(ie_join(left, right, q)) == 100

    def test_three_predicates_via_residual_filter(self):
        q = QuerySpec(
            "q",
            JoinType.CROSS,
            [Predicate(0, Op.LT, 0), Predicate(1, Op.GT, 1), Predicate(0, Op.NE, 1)],
        )
        left = rand_tuples("R", 25, 0, seed=41)
        right = rand_tuples("S", 25, 100, seed=42)
        assert sorted(ie_join(left, right, q)) == sorted(
            nested_loop_join(left, right, q)
        )

    def test_three_predicates_count(self):
        q = QuerySpec(
            "q",
            JoinType.CROSS,
            [Predicate(0, Op.LE, 0), Predicate(1, Op.GE, 1), Predicate(1, Op.LT, 0)],
        )
        left = rand_tuples("R", 20, 0, seed=43)
        right = rand_tuples("S", 20, 100, seed=44)
        assert ie_join_count(left, right, q) == len(
            nested_loop_join(left, right, q)
        )


class TestSelfJoin:
    @pytest.mark.parametrize("op1", ALL_OPS)
    @pytest.mark.parametrize("op2", ALL_OPS)
    def test_all_operator_pairs(self, op1, op2):
        q = QuerySpec.two_inequalities("q3", JoinType.SELF, op1, op2)
        tuples = rand_tuples("T", 25, 0, seed=hash((op1, op2, "s")) % 1000)
        assert sorted(ie_self_join(tuples, q)) == sorted(
            nested_loop_self_join(tuples, q)
        )

    def test_self_pair_excluded_with_nonstrict_ops(self):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, Op.GE, Op.LE)
        tuples = [make_tuple(i, "T", 1, 1) for i in range(5)]
        pairs = ie_self_join(tuples, q)
        assert all(a != b for a, b in pairs)
        assert len(pairs) == 20  # 5*4 ordered pairs

    def test_count_variant(self):
        q = QuerySpec.two_inequalities("q3", JoinType.SELF, Op.GT, Op.LT)
        tuples = rand_tuples("T", 40, 0, seed=7)
        assert ie_self_join_count(tuples, q) == len(ie_self_join(tuples, q))


class TestBandJoin:
    def test_band_vs_reference(self):
        rng = random.Random(8)
        q = QuerySpec.band("q2", width=3.0)
        tuples = [
            make_tuple(i, "T", rng.uniform(0, 20), rng.uniform(0, 20))
            for i in range(30)
        ]
        assert sorted(ie_self_join(tuples, q)) == sorted(
            nested_loop_self_join(tuples, q)
        )

    def test_zero_width_band(self):
        q = QuerySpec.band("q2", width=0.0)
        tuples = [make_tuple(i, "T", 1.0, 1.0) for i in range(5)]
        assert ie_self_join(tuples, q) == []  # exclusive band of width 0

    def test_inclusive_band(self):
        q = QuerySpec.band("q2", width=0.0, inclusive=True)
        tuples = [make_tuple(i, "T", 1.0, 1.0) for i in range(3)]
        assert len(ie_self_join(tuples, q)) == 6


class TestSinglePredicate:
    @pytest.mark.parametrize("op", ALL_OPS)
    def test_single_predicate_ops(self, op):
        q = QuerySpec("q", JoinType.CROSS, [Predicate(0, op, 0)])
        left = rand_tuples("R", 20, 0, seed=9)
        right = rand_tuples("S", 20, 100, seed=10)
        assert sorted(ie_join(left, right, q)) == sorted(
            nested_loop_join(left, right, q)
        )


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(
        left_vals=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),
                st.integers(min_value=0, max_value=8),
            ),
            max_size=20,
        ),
        right_vals=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),
                st.integers(min_value=0, max_value=8),
            ),
            max_size=20,
        ),
        op1=st.sampled_from(ALL_OPS),
        op2=st.sampled_from(ALL_OPS),
    )
    def test_cross_join_equivalence(self, left_vals, right_vals, op1, op2):
        q = QuerySpec.two_inequalities("q", JoinType.CROSS, op1, op2)
        left = [make_tuple(i, "R", a, b) for i, (a, b) in enumerate(left_vals)]
        right = [
            make_tuple(1000 + i, "S", a, b) for i, (a, b) in enumerate(right_vals)
        ]
        assert sorted(ie_join(left, right, q)) == sorted(
            nested_loop_join(left, right, q)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        vals=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=20,
        ),
        op1=st.sampled_from(ALL_OPS),
        op2=st.sampled_from(ALL_OPS),
    )
    def test_self_join_equivalence(self, vals, op1, op2):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, op1, op2)
        tuples = [make_tuple(i, "T", a, b) for i, (a, b) in enumerate(vals)]
        assert sorted(ie_self_join(tuples, q)) == sorted(
            nested_loop_self_join(tuples, q)
        )
