"""Zero-length edges of the vectorised probe paths (satellite hardening).

Empty stored sides and empty probe batches are the degenerate shapes the
numpy kernels are most likely to trip on (``searchsorted`` on a length-0
array is fine; broadcasting a 0-length bound array against a python loop
is not).  Every entry point must return well-formed empty results.
"""

import numpy as np
import pytest

from repro.core import (
    JoinType,
    Op,
    Predicate,
    QuerySpec,
    SPOJoin,
    WindowSpec,
    build_merge_batch,
    make_tuple,
)
from repro.core.arena import ArenaSlice
from repro.core.pojoin_numpy import VectorPOJoinBatch, batch_probe_intervals
from repro.core.predicates import BandPredicate
from repro.indexes import BPlusTree

from ..conftest import random_tuples


def tree_from(tuples, field):
    tree = BPlusTree(order=8)
    for t in tuples:
        tree.insert(t.values[field], t.tid)
    return tree


def self_join_batch(tuples):
    query = QuerySpec.two_inequalities("Q3", JoinType.SELF, Op.GT, Op.LT)
    trees = [tree_from(tuples, p.right_field) for p in query.predicates]
    merge = build_merge_batch(0, query, trees, None)
    return query, VectorPOJoinBatch(query, merge)


ALL_PREDS = [
    Predicate(0, Op.LT, 0),
    Predicate(0, Op.GE, 0),
    Predicate(0, Op.EQ, 0),
    Predicate(0, Op.NE, 0),
    BandPredicate(0, 0, width=2.0),
]


class TestBatchProbeIntervals:
    @pytest.mark.parametrize("pred", ALL_PREDS, ids=lambda p: repr(p))
    def test_empty_probe_batch(self, pred):
        stored = np.asarray([1.0, 2.0, 3.0])
        pairs = batch_probe_intervals(pred, np.empty(0), stored, True)
        for lo, hi in pairs:
            assert lo.shape == hi.shape == (0,)

    @pytest.mark.parametrize("pred", ALL_PREDS, ids=lambda p: repr(p))
    def test_empty_stored_side(self, pred):
        pairs = batch_probe_intervals(
            pred, np.asarray([1.0, 5.0]), np.empty(0), True
        )
        # Every interval must be empty: lo == hi for all probes.
        for lo, hi in pairs:
            assert lo.shape == hi.shape == (2,)
            assert (np.asarray(lo) == np.asarray(hi)).all()

    def test_both_empty(self):
        pairs = batch_probe_intervals(
            Predicate(0, Op.LT, 0), np.empty(0), np.empty(0), True
        )
        for lo, hi in pairs:
            assert lo.shape == hi.shape == (0,)

    def test_accepts_plain_lists(self):
        pairs = batch_probe_intervals(
            Predicate(0, Op.LT, 0), [2.0], [1.0, 2.0, 3.0], True
        )
        (lo, hi), = pairs
        assert (int(lo[0]), int(hi[0])) == (2, 3)


class TestVectorBatchEdges:
    def test_probe_batch_empty_probe_list(self):
        __, batch = self_join_batch(random_tuples(10, seed=20))
        assert batch.probe_batch([], []) == []
        assert batch.probe_batch(ArenaSlice.of([]), []) == []

    def test_probe_batch_empty_stored_side(self):
        __, batch = self_join_batch([])
        probes = random_tuples(5, seed=21)
        assert batch.probe_batch(probes, [True] * 5) == [[]] * 5
        assert batch.probe_batch(
            ArenaSlice.of(probes), [True] * 5
        ) == [[]] * 5

    def test_scalar_probe_empty_stored_side(self):
        __, batch = self_join_batch([])
        assert batch.probe(make_tuple(0, "T", 1, 2), True) == []

    def test_empty_cross_join_side(self):
        query = QuerySpec.two_inequalities("Q1", JoinType.CROSS, Op.LT, Op.GT)
        left = random_tuples(6, stream="R", seed=22)
        lt = [tree_from(left, p.left_field) for p in query.predicates]
        rt = [BPlusTree(order=8) for __ in query.predicates]
        merge = build_merge_batch(0, query, lt, rt)
        batch = VectorPOJoinBatch(query, merge)
        # Left probes hit the (empty) stored right side; right probes hit
        # the populated left side.
        l_probe = make_tuple(100, "R", 3, 3)
        r_probe = make_tuple(101, "S", 30, -30)
        assert batch.probe(l_probe, True) == []
        assert len(batch.probe(r_probe, False)) == 6
        out = batch.probe_batch([l_probe, r_probe], [True, False])
        assert out[0] == [] and len(out[1]) == 6


class TestJoinEdges:
    def test_process_many_empty_inputs(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(50, 10))
        for t in random_tuples(60, seed=23):
            join.process(t)
        assert join.process_many([]) == []
        assert join.process_many(ArenaSlice.of([])) == []

    def test_evaluate_batch_empty(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(50, 10))
        for t in random_tuples(30, seed=24):
            join.process(t)
        window = join.mutable_left
        assert window.evaluate_batch(ArenaSlice.of([]), []) == []
        assert window.evaluate_batch([], []) == []
