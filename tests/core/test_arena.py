"""Columnar tuple arena: views, slices, and object-plane equivalence.

The arena is the storage half of the columnar data plane; these tests pin
down the contract the rest of the system leans on:

* :class:`ArenaTuple` views are indistinguishable from the boxed
  :class:`StreamTuple` they shadow — same attribute values, pure-Python
  scalar types (fingerprints hash ``repr``, so a leaked ``np.int64``
  would silently change every result fingerprint);
* :class:`ArenaSlice` behaves like the tuple list it replaces under
  ``len``/iteration/indexing/``take``, and its columnar accessors are
  zero-copy over the arena storage;
* bulk transfer (``extend_slice``) preserves everything including the
  per-arena stream dictionary encoding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_tuple
from repro.core.arena import (
    ArenaSlice,
    ArenaTuple,
    TupleArena,
    column_of,
    event_times_of,
    flags_of,
    tids_of,
)
from repro.core.tuples import StreamTuple

from ..conftest import interleaved_rs, random_tuples


# ----------------------------------------------------------------------
# TupleArena basics
# ----------------------------------------------------------------------
class TestTupleArena:
    def test_append_and_view(self):
        arena = TupleArena()
        slot = arena.append(7, "R", (1.5, 2.5), event_time=0.25)
        view = arena.view(slot)
        assert (view.tid, view.stream) == (7, "R")
        assert view.values == (1.5, 2.5)
        assert view.event_time == 0.25

    def test_growth_beyond_initial_capacity(self):
        arena = TupleArena(capacity=2)
        for i in range(100):
            arena.append(i, "T", (float(i), float(-i)))
        assert len(arena) == 100
        assert arena.tid_column().tolist() == list(range(100))
        assert arena.field(0).tolist() == [float(i) for i in range(100)]

    def test_field_count_mismatch_rejected(self):
        arena = TupleArena()
        arena.append(0, "T", (1.0, 2.0))
        with pytest.raises(ValueError):
            arena.append(1, "T", (1.0,))

    def test_view_out_of_range(self):
        arena = TupleArena()
        arena.append(0, "T", (1.0,))
        with pytest.raises(IndexError):
            arena.view(1)

    def test_stream_dictionary_encoding(self):
        arena = TupleArena()
        for i, stream in enumerate(["R", "S", "R", "S", "S"]):
            arena.append(i, stream, (0.0,))
        assert [arena.stream_of(i) for i in range(5)] == [
            "R", "S", "R", "S", "S",
        ]
        assert arena.stream_names == ["R", "S"]

    def test_reset_retains_capacity(self):
        arena = TupleArena()
        for i in range(10):
            arena.append(i, "T", (1.0, 2.0))
        arena.reset()
        assert len(arena) == 0
        assert arena.memory_bits() == 0
        arena.append(99, "U", (3.0, 4.0))
        assert arena.view(0).stream == "U"

    def test_memory_bits_counts_columns(self):
        arena = TupleArena()
        for i in range(5):
            arena.append(i, "T", (1.0, 2.0, 3.0))
        # tid + event_time + 3 fields, 64 bits each, 5 rows.
        assert arena.memory_bits() == (2 + 3) * 64 * 5


# ----------------------------------------------------------------------
# ArenaTuple: StreamTuple compatibility
# ----------------------------------------------------------------------
class TestArenaTuple:
    def test_is_a_stream_tuple(self):
        sl = ArenaSlice.of(random_tuples(3, seed=1))
        assert all(isinstance(t, StreamTuple) for t in sl)
        assert all(isinstance(t, ArenaTuple) for t in sl)

    def test_accessors_return_pure_python_scalars(self):
        sl = ArenaSlice.of(random_tuples(4, seed=2))
        t = sl[0]
        assert type(t.tid) is int
        assert type(t.event_time) is float
        assert type(t.values) is tuple
        assert all(type(v) is float for v in t.values)
        assert type(t.value(1)) is float
        # The engine fingerprints hash repr(); numpy scalars leak as
        # "np.float64(...)" under numpy>=2 and would corrupt them.
        assert "np." not in repr((t.tid, t.values, t.event_time))

    def test_materialize_round_trip(self):
        original = random_tuples(6, seed=3)
        for view, t in zip(ArenaSlice.of(original), original):
            m = view.materialize()
            assert type(m) is StreamTuple
            assert (m.tid, m.stream, m.values, m.event_time) == (
                t.tid, t.stream, t.values, t.event_time,
            )


# ----------------------------------------------------------------------
# ArenaSlice: sequence protocol + columnar accessors
# ----------------------------------------------------------------------
class TestArenaSlice:
    def test_len_iter_getitem(self):
        data = interleaved_rs(9, seed=4)
        sl = ArenaSlice.of(data)
        assert len(sl) == 9
        assert [t.tid for t in sl] == [t.tid for t in data]
        assert sl[-1].tid == data[-1].tid
        with pytest.raises(IndexError):
            sl[9]

    def test_subslice_contiguous(self):
        sl = ArenaSlice.of(random_tuples(10, seed=5))
        sub = sl[2:7]
        assert isinstance(sub, ArenaSlice)
        assert sub.index is None
        assert [t.tid for t in sub] == [2, 3, 4, 5, 6]

    def test_subslice_with_step_goes_indexed(self):
        sl = ArenaSlice.of(random_tuples(10, seed=6))
        sub = sl[1:8:2]
        assert sub.index is not None
        assert [t.tid for t in sub] == [1, 3, 5, 7]

    def test_take_preserves_order_and_repeats(self):
        sl = ArenaSlice.of(random_tuples(6, seed=7))
        taken = sl.take([4, 0, 4, 2])
        assert [t.tid for t in taken] == [4, 0, 4, 2]
        # take() of an indexed slice composes.
        again = taken.take([1, 3])
        assert [t.tid for t in again] == [0, 2]

    def test_contiguous_columns_are_zero_copy(self):
        arena = TupleArena()
        for i in range(8):
            arena.append(i, "T", (float(i), float(i * 2)))
        sl = arena.slice(2, 6)
        col = sl.field_values(1)
        assert np.shares_memory(col, arena.fields)
        assert np.shares_memory(sl.tid_values(), arena.tids)

    def test_columnar_accessors_match_views(self):
        data = interleaved_rs(12, seed=8)
        sl = ArenaSlice.of(data).take([3, 1, 10, 7])
        assert sl.field_values(0).tolist() == [t.values[0] for t in sl]
        assert sl.tids_list() == [t.tid for t in sl]
        assert sl.event_time_values().tolist() == [t.event_time for t in sl]
        assert sl.stream_flags("R").tolist() == [t.stream == "R" for t in sl]

    def test_stream_flags_unknown_stream(self):
        sl = ArenaSlice.of(random_tuples(5, seed=9))
        assert sl.stream_flags("nope").tolist() == [False] * 5

    def test_extend_slice_bulk_copy(self):
        src = ArenaSlice.of(interleaved_rs(7, seed=10))
        dst = TupleArena()
        dst.append(100, "S", (9.0, 9.0))  # pre-seed a different dictionary
        out = dst.extend(src)
        assert len(dst) == 8
        assert [t.stream for t in out] == [t.stream for t in src]
        assert [t.tid for t in out] == [t.tid for t in src]
        assert out.field_values(1).tolist() == src.field_values(1).tolist()

    def test_extend_empty_slice(self):
        dst = TupleArena()
        out = dst.extend(ArenaSlice.of([]))
        assert len(out) == 0
        assert len(dst) == 0


# ----------------------------------------------------------------------
# Compatibility shims accept both planes
# ----------------------------------------------------------------------
class TestShims:
    def test_shims_equal_across_planes(self):
        data = interleaved_rs(11, seed=11)
        sl = ArenaSlice.of(data)
        assert column_of(sl, 0).tolist() == column_of(data, 0).tolist()
        assert tids_of(sl) == tids_of(data)
        assert flags_of(sl, "R") == flags_of(data, "R")
        assert event_times_of(sl) == event_times_of(data)

    def test_shims_return_pure_python(self):
        sl = ArenaSlice.of(interleaved_rs(4, seed=12))
        assert all(type(x) is int for x in tids_of(sl))
        assert all(type(x) is bool for x in flags_of(sl, "R"))
        assert all(type(x) is float for x in event_times_of(sl))


# ----------------------------------------------------------------------
# Property: StreamTuple <-> arena-view round trip (satellite c)
# ----------------------------------------------------------------------
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=32, min_value=-1e6,
    max_value=1e6,
)
tuple_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**40),
        st.sampled_from(["R", "S", "T"]),
        st.tuples(finite_floats, finite_floats),
        finite_floats,
    ),
    min_size=0,
    max_size=40,
)


@settings(deadline=None, max_examples=60)
@given(tuple_specs, st.randoms(use_true_random=False))
def test_round_trip_property(specs, rng):
    originals = [
        StreamTuple(tid, stream, values, event_time)
        for tid, stream, values, event_time in specs
    ]
    sl = ArenaSlice.of(originals)
    assert len(sl) == len(originals)
    for view, t in zip(sl, originals):
        assert (view.tid, view.stream) == (t.tid, t.stream)
        assert view.values == tuple(float(v) for v in t.values)
        assert view.event_time == float(t.event_time)
    if originals:
        # An arbitrary gather then a bulk copy into a second arena must
        # still reproduce the originals exactly.
        idx = [rng.randrange(len(originals)) for __ in range(len(originals))]
        gathered = sl.take(idx)
        copied = TupleArena().extend(gathered)
        for view, j in zip(copied, idx):
            t = originals[j]
            assert (view.tid, view.stream) == (t.tid, t.stream)
            assert view.values == tuple(float(v) for v in t.values)
            assert view.event_time == float(t.event_time)
