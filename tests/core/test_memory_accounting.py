"""Memory accounting under the columnar data plane (satellite audit).

The arena refactor shares storage in two places that used to copy:

* each merged :class:`SortedRun` caches numpy mirrors of its columns,
  and :class:`VectorPOJoinBatch` links those *same* arrays — the column
  must therefore be accounted exactly once (by the run, Equation 2's
  window payload), never again by the vector side;
* the mutable component's arena shadows the tuples the field B+-trees
  index; its payload is reported by ``payload_bits()``, kept out of
  ``memory_bits()`` so Equation 1's index-footprint series (and every
  figure built on it) is unchanged by the refactor.
"""

import numpy as np

from repro.core import SPOJoin, WindowSpec
from repro.core.arena import ArenaSlice
from repro.core.pojoin_numpy import VectorPOJoinBatch

from ..conftest import interleaved_rs, random_tuples


def drive_past_merge(query, data, batch_size=16):
    join = SPOJoin(query, WindowSpec.count(100, 20))
    for i in range(0, len(data), batch_size):
        join.process_many(ArenaSlice.of(data[i : i + batch_size]))
    assert join.stats.merges > 0, "workload must trigger at least one merge"
    return join


class TestImmutableAccounting:
    def test_vector_side_shares_run_columns(self, q3_query):
        join = drive_past_merge(q3_query, random_tuples(200, seed=40))
        batches = list(join.immutable.batches)
        assert batches
        for vec in batches:
            assert isinstance(vec, VectorPOJoinBatch)
            side = vec._left
            for run, values, tids in zip(
                side.merge_side.runs, side.values, side.tids
            ):
                # Identity, not equality: the vector side must link the
                # run's cached columns, not rebuild them.
                assert values is run.values_array()
                assert tids is run.tids_array()
                assert np.shares_memory(values, run.values_array())

    def test_merge_time_cache_is_prefilled(self, q3_query):
        join = drive_past_merge(q3_query, random_tuples(200, seed=41))
        run = join.immutable.batches[0].batch.left.runs[0]
        # The arena merge path caches the argsorted columns eagerly.
        assert run._values_arr is not None
        assert run._tids_arr is not None
        # Cached arrays mirror the canonical python lists exactly.
        assert run._values_arr.tolist() == run.values
        assert run._tids_arr.tolist() == run.tids

    def test_batch_memory_bits_counts_columns_once(self, q3_query):
        join = drive_past_merge(q3_query, random_tuples(200, seed=42))
        vec = join.immutable.batches[0]
        merge = vec.batch
        # Equation 2 accounting: value+tid words per run entry, plus the
        # permutation array.  Linking the vector side must not add bits.
        offset_bits = sum(64 * len(o) for o in merge.offsets.values())
        expected = (
            sum(2 * 64 * len(run) for run in merge.left.runs)
            + 64 * len(merge.left.permutation)
            + offset_bits
        )
        assert vec.memory_bits() == merge.memory_bits() == expected
        assert vec.index_overhead_bits() == (
            64 * len(merge.left.permutation) + offset_bits
        )

    def test_two_sided_accounting(self, q1_query):
        join = drive_past_merge(q1_query, interleaved_rs(240, seed=43))
        vec = join.immutable.batches[0]
        merge = vec.batch
        expected = (
            merge.left.memory_bits()
            + merge.right.memory_bits()
            + sum(64 * len(o) for o in merge.offsets.values())
        )
        assert vec.memory_bits() == expected


class TestMutableAccounting:
    def test_arena_payload_separate_from_index_bits(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(100, 20))
        data = random_tuples(50, seed=44)
        join.process_many(ArenaSlice.of(data))
        window = join.mutable_left
        # Equation 1's I_M: field-index footprint only.
        assert window.memory_bits() == sum(
            tree.memory_bits() for tree in window.trees
        )
        # The columnar payload is reported separately and matches the
        # arena's live-row accounting: (tid + time + fields) * 64 * rows.
        nf = window.arena.num_fields
        assert window.payload_bits() == (2 + nf) * 64 * len(window.arena)
        assert len(window.arena) == len(window)

    def test_arena_resets_with_merge(self, q3_query):
        join = drive_past_merge(q3_query, random_tuples(200, seed=45))
        window = join.mutable_left
        # After merges the arena holds only the still-mutable tail, so
        # payload never grows with stream length.
        assert len(window.arena) == len(window)
        assert window.payload_bits() == (
            (2 + window.arena.num_fields) * 64 * len(window)
        )
