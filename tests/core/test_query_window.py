"""Query specs, tuples, windows, and merge policies."""

import warnings

import pytest

from repro.core import (
    JoinType,
    MergePolicy,
    Op,
    Predicate,
    QuerySpec,
    StreamTuple,
    WindowKind,
    WindowSpec,
    make_tuple,
)


class TestStreamTuple:
    def test_construction(self):
        t = make_tuple(3, "R", 1.0, 2.0, event_time=0.5)
        assert t.tid == 3
        assert t.stream == "R"
        assert t.values == (1.0, 2.0)
        assert t.value(1) == 2.0
        assert t.event_time == 0.5

    def test_equality_and_hash(self):
        a = make_tuple(1, "R", 5)
        b = make_tuple(1, "R", 5)
        c = make_tuple(2, "R", 5)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_values_immutable_tuple(self):
        t = StreamTuple(0, "R", [1, 2])
        assert isinstance(t.values, tuple)


class TestQuerySpec:
    def test_requires_predicates(self):
        with pytest.raises(ValueError):
            QuerySpec("q", JoinType.SELF, [])

    def test_two_inequalities_shape(self):
        q = QuerySpec.two_inequalities("Q", JoinType.CROSS, Op.LT, Op.GT)
        assert q.num_predicates == 2
        assert not q.is_self_join
        assert q.fields_used() == [0, 1]

    def test_band_shape(self):
        q = QuerySpec.band("Q2", width=0.03)
        assert q.is_self_join
        assert q.join_type is JoinType.BAND

    def test_equi_shape(self):
        q = QuerySpec.equi("QE")
        assert q.num_predicates == 1
        assert q.predicates[0].op is Op.EQ

    def test_matches_semantics(self):
        q = QuerySpec.two_inequalities("Q", JoinType.CROSS, Op.LT, Op.GT)
        r = make_tuple(0, "R", 1, 9)
        s = make_tuple(1, "S", 5, 3)
        assert q.matches(r, s)  # 1 < 5 and 9 > 3
        assert not q.matches(s, r)

    def test_self_join_excludes_identity(self):
        q = QuerySpec.two_inequalities("Q", JoinType.SELF, Op.GE, Op.LE)
        t = make_tuple(7, "T", 1, 1)
        assert not q.matches(t, t)
        other = make_tuple(8, "T", 1, 1)
        assert q.matches(t, other)

    def test_fields_used_custom(self):
        q = QuerySpec("q", JoinType.SELF, [Predicate(2, Op.LT, 4)])
        assert q.fields_used() == [2, 4]


class TestWindowSpec:
    def test_count_window(self):
        w = WindowSpec.count(1000, 100)
        assert w.kind is WindowKind.COUNT
        assert w.num_slides == 10

    def test_time_window(self):
        w = WindowSpec.time(60.0, 10.0)
        assert w.kind is WindowKind.TIME
        assert w.num_slides == 6

    @pytest.mark.parametrize(
        "length,slide", [(0, 1), (10, 0), (10, -1), (5, 10)]
    )
    def test_invalid_specs_rejected(self, length, slide):
        with pytest.raises(ValueError):
            WindowSpec.count(length, slide)


class TestMergePolicy:
    def test_full_slide_threshold(self):
        policy = MergePolicy(WindowSpec.count(1000, 200))
        assert policy.delta == 200
        assert policy.max_batches == 4  # 5 intervals - 1 mutable

    def test_sub_interval_threshold(self):
        policy = MergePolicy(WindowSpec.count(1000, 200), sub_intervals=4)
        assert policy.delta == 50
        assert policy.max_batches == 16  # 20 intervals - 4 mutable

    def test_single_slide_window(self):
        policy = MergePolicy(WindowSpec.count(100, 100))
        assert policy.max_batches >= 1

    def test_rejects_bad_sub_intervals(self):
        with pytest.raises(ValueError):
            MergePolicy(WindowSpec.count(10, 5), sub_intervals=0)


class TestNonDivisibleWindows:
    def test_divisible_specs_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            WindowSpec.count(1000, 200)
            WindowSpec.time(60.0, 10.0)

    def test_float_ratio_within_tolerance_is_divisible(self):
        # 1.0 / 0.2 = 4.999999999999999 — divisible in intent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            w = WindowSpec.time(1.0, 0.2)
        assert w.num_slides == 5

    def test_non_divisible_spec_warns(self):
        with pytest.warns(UserWarning, match="not an integral multiple"):
            WindowSpec.count(49, 12)

    def test_num_slides_uses_ceiling(self):
        with pytest.warns(UserWarning):
            w = WindowSpec.count(49, 12)
        # round(49/12) = 4 used to drop the partial trailing slide.
        assert w.num_slides == 5

    def test_banker_rounding_regression(self):
        # 10 / 4 = 2.5: round() banker's-rounds to 2, ceiling gives 3.
        with pytest.warns(UserWarning):
            w = WindowSpec.count(10, 4)
        assert w.num_slides == 3

    def test_max_batches_uses_ceiling(self):
        with pytest.warns(UserWarning):
            window = WindowSpec.count(10, 4)
        policy = MergePolicy(window)
        # ceil(10/4) = 3 intervals minus the mutable one.
        assert policy.max_batches == 2

    def test_max_batches_with_sub_intervals_non_divisible(self):
        with pytest.warns(UserWarning):
            window = WindowSpec.count(49, 12)
        policy = MergePolicy(window, sub_intervals=4)
        # delta = 3; ceil(49/3) = 17 intervals minus 4 mutable.
        assert policy.max_batches == 13
