"""Logical operator: provenance hash table vs overwrite semantics."""

import pytest

from repro.core import BitSet, LogicalAndOperator


def bits_of(size, *indices):
    b = BitSet(size)
    for i in indices:
        b.set(i)
    return b


class TestProvenanceMode:
    def test_waits_for_all_predicates(self):
        op = LogicalAndOperator(num_predicates=2)
        assert op.receive(1, 0, {10, 11}) is None
        result = op.receive(1, 1, {11, 12})
        assert result is not None
        assert result.matches == [11]
        assert result.correct
        assert op.pending == 0

    def test_interleaved_tuples_stay_separate(self):
        op = LogicalAndOperator(num_predicates=2)
        assert op.receive(1, 0, {10}) is None
        assert op.receive(2, 0, {20}) is None
        r2 = op.receive(2, 1, {20, 21})
        assert r2.probe_tid == 2 and r2.matches == [20]
        r1 = op.receive(1, 1, {10, 30})
        assert r1.probe_tid == 1 and r1.matches == [10]
        assert op.correctness_ratio() == 1.0

    def test_bitset_partials(self):
        op = LogicalAndOperator(num_predicates=2)
        op.receive(5, 0, bits_of(8, 1, 2, 3))
        result = op.receive(5, 1, bits_of(8, 2, 3, 4))
        assert result.matches == [2, 3]

    def test_single_predicate_emits_immediately(self):
        op = LogicalAndOperator(num_predicates=1)
        result = op.receive(1, 0, {7})
        assert result is not None and result.matches == [7]

    def test_rejects_zero_predicates(self):
        with pytest.raises(ValueError):
            LogicalAndOperator(num_predicates=0)


class TestOverwriteMode:
    def test_out_of_order_overwrite_detected(self):
        op = LogicalAndOperator(num_predicates=2, use_provenance=False)
        # Tuple 1's pred-0 partial arrives, then tuple 2's pred-0 partial
        # overwrites it before tuple 1's pred-1 partial lands.
        assert op.receive(1, 0, {10}) is None
        assert op.receive(2, 0, {20}) is None  # overwrites slot 0
        result = op.receive(1, 1, {10, 20})
        assert result is not None
        assert not result.correct
        assert op.incorrect == 1

    def test_in_order_remains_correct(self):
        op = LogicalAndOperator(num_predicates=2, use_provenance=False)
        op.receive(1, 0, {10})
        result = op.receive(1, 1, {10})
        assert result.correct
        assert op.correctness_ratio() == 1.0

    def test_correctness_ratio_mixed(self):
        op = LogicalAndOperator(num_predicates=2, use_provenance=False)
        op.receive(1, 0, {1})
        op.receive(1, 1, {1})  # correct
        op.receive(2, 0, {2})
        op.receive(3, 0, {3})  # overwrite
        op.receive(3, 1, {3})  # incorrect pairing? ids {3} only -> correct
        op.receive(4, 0, {4})
        op.receive(5, 1, {5})  # pairs tid 4 & 5 -> incorrect
        assert 0.0 < op.correctness_ratio() < 1.0

    def test_empty_correctness_ratio(self):
        op = LogicalAndOperator(num_predicates=2, use_provenance=False)
        assert op.correctness_ratio() == 1.0
