"""Immutable PO-Join: probe semantics, offset seeding, Algorithm 4 list."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JoinType,
    Op,
    POJoinBatch,
    POJoinList,
    QuerySpec,
    build_merge_batch,
    make_tuple,
)
from repro.core.pojoin import _list_schedule_makespan
from repro.indexes import BPlusTree

ALL_OPS = [Op.LT, Op.GT, Op.LE, Op.GE, Op.EQ, Op.NE]


def tree_from(tuples, field):
    tree = BPlusTree(order=8)
    for t in tuples:
        tree.insert(t.values[field], t.tid)
    return tree


def self_batch(query, tuples, batch_id=0, use_offsets=True):
    trees = [tree_from(tuples, p.left_field) for p in query.predicates]
    return POJoinBatch(query, build_merge_batch(batch_id, query, trees), use_offsets)


def cross_batch(query, left, right, batch_id=0, use_offsets=True):
    lt = [tree_from(left, p.left_field) for p in query.predicates]
    rt = [tree_from(right, p.right_field) for p in query.predicates]
    return POJoinBatch(
        query, build_merge_batch(batch_id, query, lt, rt), use_offsets
    )


def rand_tuples(stream, n, start, seed, hi=12):
    rng = random.Random(seed)
    return [
        make_tuple(start + i, stream, rng.randint(0, hi), rng.randint(0, hi))
        for i in range(n)
    ]


class TestSelfBatchProbe:
    @pytest.mark.parametrize("op1", ALL_OPS)
    @pytest.mark.parametrize("op2", ALL_OPS)
    def test_probe_vs_reference(self, op1, op2):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, op1, op2)
        stored = rand_tuples("T", 30, 0, seed=hash((op1, op2)) % 997)
        batch = self_batch(q, stored)
        probes = rand_tuples("T", 10, 1000, seed=5)
        for probe in probes:
            got = sorted(batch.probe(probe, True))
            exp = sorted(s.tid for s in stored if q.matches(probe, s))
            assert got == exp, (op1, op2, probe.values)

    def test_empty_batch(self):
        q = QuerySpec.two_inequalities("q", JoinType.SELF, Op.GT, Op.LT)
        batch = self_batch(q, [])
        assert batch.probe(make_tuple(1, "T", 5, 5), True) == []

    def test_band_probe(self):
        rng = random.Random(1)
        q = QuerySpec.band("q2", width=2.5)
        stored = [
            make_tuple(i, "T", rng.uniform(0, 10), rng.uniform(0, 10))
            for i in range(25)
        ]
        batch = self_batch(q, stored)
        probe = make_tuple(99, "T", 5.0, 5.0)
        got = sorted(batch.probe(probe, True))
        exp = sorted(s.tid for s in stored if q.matches(probe, s))
        assert got == exp


class TestCrossBatchProbe:
    @pytest.mark.parametrize("use_offsets", [True, False])
    @pytest.mark.parametrize("probe_is_left", [True, False])
    def test_probe_both_directions(self, use_offsets, probe_is_left):
        q = QuerySpec.two_inequalities("q", JoinType.CROSS, Op.LT, Op.GT)
        left = rand_tuples("R", 25, 0, seed=2)
        right = rand_tuples("S", 25, 100, seed=3)
        batch = cross_batch(q, left, right, use_offsets=use_offsets)
        probes = rand_tuples("R" if probe_is_left else "S", 10, 1000, seed=4)
        stored = right if probe_is_left else left
        for probe in probes:
            got = sorted(batch.probe(probe, probe_is_left))
            if probe_is_left:
                exp = sorted(s.tid for s in stored if q.matches(probe, s))
            else:
                exp = sorted(s.tid for s in stored if q.matches(s, probe))
            assert got == exp

    def test_offset_and_bisect_paths_agree(self):
        q = QuerySpec.two_inequalities("q", JoinType.CROSS, Op.LE, Op.GE)
        left = rand_tuples("R", 40, 0, seed=6)
        right = rand_tuples("S", 40, 100, seed=7)
        with_off = cross_batch(q, left, right, use_offsets=True)
        without = cross_batch(q, left, right, use_offsets=False)
        for probe in rand_tuples("R", 25, 1000, seed=8):
            assert sorted(with_off.probe(probe, True)) == sorted(
                without.probe(probe, True)
            )

    def test_single_predicate_equi_batch(self):
        q = QuerySpec.equi("qe")
        left = rand_tuples("R", 20, 0, seed=9, hi=5)
        right = rand_tuples("S", 20, 100, seed=10, hi=5)
        batch = cross_batch(q, left, right)
        probe = make_tuple(999, "R", 3, 0)
        got = sorted(batch.probe(probe, True))
        assert got == sorted(s.tid for s in right if s.values[0] == 3)

    @settings(max_examples=40, deadline=None)
    @given(
        left_vals=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20
        ),
        right_vals=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20
        ),
        probe_vals=st.tuples(st.integers(-1, 9), st.integers(-1, 9)),
        op1=st.sampled_from(ALL_OPS),
        op2=st.sampled_from(ALL_OPS),
        use_offsets=st.booleans(),
    )
    def test_property_probe(
        self, left_vals, right_vals, probe_vals, op1, op2, use_offsets
    ):
        q = QuerySpec.two_inequalities("q", JoinType.CROSS, op1, op2)
        left = [make_tuple(i, "R", a, b) for i, (a, b) in enumerate(left_vals)]
        right = [
            make_tuple(100 + i, "S", a, b) for i, (a, b) in enumerate(right_vals)
        ]
        batch = cross_batch(q, left, right, use_offsets=use_offsets)
        probe = make_tuple(999, "R", *probe_vals)
        got = sorted(batch.probe(probe, True))
        assert got == sorted(s.tid for s in right if q.matches(probe, s))


class TestPOJoinList:
    def make_list(self, q, num_batches, per_batch=10, max_batches=None):
        lst = POJoinList(q, max_batches=max_batches)
        for b in range(num_batches):
            stored = rand_tuples("T", per_batch, b * per_batch, seed=b)
            lst.append(self_batch(q, stored, batch_id=b))
        return lst

    def test_probe_all_unions_batches(self, q3_query):
        lst = self.make_list(q3_query, 4)
        probe = make_tuple(999, "T", 6, 6)
        outcome = lst.probe_all(probe, True)
        assert outcome.batches_probed == 4
        # Reference: probe each batch independently.
        expected = []
        for batch in lst.batches:
            expected.extend(batch.probe(probe, True))
        assert sorted(outcome.matches) == sorted(expected)

    def test_max_batches_expiry(self, q3_query):
        lst = self.make_list(q3_query, 6, max_batches=3)
        assert len(lst) == 3
        assert lst.expired_batches == 3
        assert [b.batch_id for b in lst.batches] == [3, 4, 5]

    def test_batch_id_filter(self, q3_query):
        lst = self.make_list(q3_query, 4)
        probe = make_tuple(999, "T", 6, 6)
        limited = lst.probe_all(probe, True, batch_id_lt=2)
        assert limited.batches_probed == 2

    def test_total_tuples_and_memory(self, q3_query):
        lst = self.make_list(q3_query, 3, per_batch=7)
        assert lst.total_tuples() == 21
        assert lst.memory_bits() > 0

    def test_invalid_threads(self, q3_query):
        lst = self.make_list(q3_query, 1)
        with pytest.raises(ValueError):
            lst.probe_all(make_tuple(1, "T", 1, 1), True, num_threads=0)

    def test_makespan_not_more_than_serial(self, q3_query):
        lst = self.make_list(q3_query, 8)
        probe = make_tuple(999, "T", 6, 6)
        serial = lst.probe_all(probe, True, num_threads=1)
        parallel = lst.probe_all(probe, True, num_threads=4)
        assert parallel.makespan <= serial.total_cost + 1e-9


class TestListScheduling:
    def test_empty(self):
        assert _list_schedule_makespan([], 4) == 0.0

    def test_single_thread_is_sum(self):
        assert _list_schedule_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_more_threads_than_work(self):
        assert _list_schedule_makespan([1.0, 2.0], 8) == pytest.approx(2.0)

    def test_balanced_split(self):
        # 4 equal costs over 2 workers -> 2 each.
        assert _list_schedule_makespan([1.0] * 4, 2) == pytest.approx(2.0)
