"""Public streaming API and SPOJoin edge behaviours."""

import pytest

from repro.core import JoinType, Op, QuerySpec, SPOJoin, WindowSpec, make_tuple

from ..conftest import random_tuples


class TestRunIterator:
    def test_yields_aligned_results(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(50, 10))
        tuples = random_tuples(120, seed=110)
        results = list(join.run(tuples))
        assert len(results) == 120
        assert [t for t, __ in results] == tuples
        # Matches agree with a second operator driven through process().
        replay = SPOJoin(q3_query, WindowSpec.count(50, 10))
        for (t, matches) in results:
            assert sorted(matches) == sorted(m for __, m in replay.process(t))

    def test_lazy_consumption(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(50, 10))
        iterator = join.run(iter(random_tuples(1000, seed=111)))
        next(iterator)
        # Only one tuple consumed so far.
        assert join.stats.tuples_processed == 1


class TestEdgeBehaviours:
    def test_single_tuple_stream(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(10, 5))
        assert join.process(make_tuple(0, "T", 1, 1)) == []

    def test_window_equal_to_slide(self, q3_query):
        # One merge interval per window: everything immutable expires fast.
        join = SPOJoin(q3_query, WindowSpec.count(20, 20))
        for t in random_tuples(100, seed=112):
            join.process(t)
        assert join.mutable_size() + join.immutable_size() <= 40

    def test_num_threads_do_not_change_results(self, q3_query):
        tuples = random_tuples(200, seed=113)
        serial = SPOJoin(q3_query, WindowSpec.count(60, 20), num_threads=1)
        threaded = SPOJoin(q3_query, WindowSpec.count(60, 20), num_threads=8)
        for t in tuples:
            assert sorted(serial.process(t)) == sorted(threaded.process(t))

    def test_custom_stream_names(self, q1_query):
        join = SPOJoin(
            q1_query,
            WindowSpec.count(40, 10),
            left_stream="alpha",
            right_stream="beta",
        )
        a = make_tuple(0, "alpha", 1, 9)
        b = make_tuple(1, "beta", 5, 3)
        assert join.process(a) == []
        # 1 < 5 and 9 > 3: the beta tuple matches the stored alpha tuple.
        assert join.process(b) == [(1, 0)]

    def test_stats_reset_free_counters(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(40, 10))
        assert join.stats.tuples_processed == 0
        join.process(make_tuple(0, "T", 1, 1))
        assert join.stats.tuples_processed == 1
