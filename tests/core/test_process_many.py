"""Batch/scalar equivalence of the batch-first core.

``SPOJoin.process_many`` must return *exactly* the pairs the scalar
``process`` loop returns — same matches, same order, same statistics —
for every chunking of the stream, because the distributed batched
topology is built on top of it.  The oracle is the brute-force
:class:`ReferenceWindowJoin` from conftest.
"""

import random
from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JoinType,
    Op,
    QuerySpec,
    SPOJoin,
    WindowSpec,
    make_tuple,
)

from ..conftest import INEQ_OPS, ReferenceWindowJoin, interleaved_rs, random_tuples

CHUNKINGS = [1, 7, 64]


def scalar_pairs(join, tuples):
    pairs = []
    for t in tuples:
        pairs.extend(join.process(t))
    return pairs


def batched_pairs(join, tuples, chunk):
    pairs = []
    for i in range(0, len(tuples), chunk):
        pairs.extend(join.process_many(tuples[i : i + chunk]))
    return pairs


def stats_tuple(join):
    s = join.stats
    return (
        s.tuples_processed,
        s.matches_emitted,
        s.mutable_matches,
        s.immutable_matches,
        s.merges,
        s.expired_batches,
    )


def assert_batch_equals_scalar(make_join, tuples):
    ref = make_join()
    expected = scalar_pairs(ref, tuples)
    for chunk in CHUNKINGS:
        join = make_join()
        got = batched_pairs(join, tuples, chunk)
        assert got == expected, chunk
        assert stats_tuple(join) == stats_tuple(ref), chunk


class TestChunkingEquivalence:
    def test_q3_self_join(self, q3_query):
        tuples = random_tuples(300, seed=1)
        window = WindowSpec.count(80, 20)
        assert_batch_equals_scalar(lambda: SPOJoin(q3_query, window), tuples)

    def test_band_self_join(self, q2_query):
        tuples = random_tuples(250, seed=2)
        window = WindowSpec.count(60, 20)
        assert_batch_equals_scalar(lambda: SPOJoin(q2_query, window), tuples)

    def test_cross_join(self, q1_query):
        tuples = interleaved_rs(300, seed=3)
        window = WindowSpec.count(80, 20)
        assert_batch_equals_scalar(lambda: SPOJoin(q1_query, window), tuples)

    def test_hash_evaluator(self, q3_query):
        tuples = random_tuples(200, seed=4)
        window = WindowSpec.count(60, 20)
        assert_batch_equals_scalar(
            lambda: SPOJoin(q3_query, window, evaluator="hash"), tuples
        )

    def test_sub_intervals(self, q3_query):
        tuples = random_tuples(250, seed=5)
        window = WindowSpec.count(80, 40)
        assert_batch_equals_scalar(
            lambda: SPOJoin(q3_query, window, sub_intervals=4), tuples
        )

    def test_time_window(self, q3_query):
        tuples = random_tuples(250, seed=6)
        window = WindowSpec.time(0.08, 0.02)
        assert_batch_equals_scalar(lambda: SPOJoin(q3_query, window), tuples)

    def test_empty_and_single(self, q3_query):
        join = SPOJoin(q3_query, WindowSpec.count(40, 10))
        assert join.process_many([]) == []
        t = make_tuple(0, "T", 1, 2)
        assert join.process_many([t]) == []
        assert join.stats.tuples_processed == 1

    @pytest.mark.parametrize("evaluator", ["bit", "hash"])
    @pytest.mark.parametrize("nan_field", [0, 1])
    def test_nan_values_stay_equivalent(self, q3_query, evaluator, nan_field):
        # Regression: NaN keys used to be inserted into the mutable
        # B+-trees, where every comparison against them is false — the
        # tree's ordering invariant broke and range scans returned
        # positions for *other* tuples, so the scalar path diverged
        # from the batched (argsort-based) path.  NaN keys now stay out
        # of the index and matches involving NaN are impossible by
        # definition.
        rng = random.Random(9)
        tuples = []
        for i in range(200):
            values = [rng.random(), rng.random()]
            if i % 7 == 0:
                values[nan_field] = float("nan")
            tuples.append(
                make_tuple(i, "T", *values, event_time=i * 1e-3)
            )
        window = WindowSpec.count(60, 20)
        assert_batch_equals_scalar(
            lambda: SPOJoin(q3_query, window, evaluator=evaluator), tuples
        )
        ref = SPOJoin(q3_query, window, evaluator=evaluator)
        nan_tids = {i for i in range(200) if i % 7 == 0}
        for probe_tid, match_tid in scalar_pairs(ref, tuples):
            assert probe_tid not in nan_tids
            assert match_tid not in nan_tids


class TestAgainstOracle:
    @settings(max_examples=15, deadline=None)
    @given(
        op1=st.sampled_from(INEQ_OPS),
        op2=st.sampled_from(INEQ_OPS),
        self_join=st.booleans(),
        chunk=st.sampled_from(CHUNKINGS),
        window_len=st.integers(min_value=20, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_process_many_matches_nested_loop(
        self, op1, op2, self_join, chunk, window_len, seed
    ):
        join_type = JoinType.SELF if self_join else JoinType.CROSS
        query = QuerySpec.two_inequalities("q", join_type, op1, op2)
        window = WindowSpec.count(window_len, max(1, window_len // 3))
        if self_join:
            tuples = random_tuples(150, lo=0, hi=8, seed=seed)
        else:
            tuples = interleaved_rs(150, seed=seed, lo=0, hi=8)

        oracle = ReferenceWindowJoin(query, window)
        expected = {t.tid: set(oracle.process(t)) for t in tuples}

        join = SPOJoin(query, window)
        got = defaultdict(set)
        for i in range(0, len(tuples), chunk):
            for probe, match in join.process_many(tuples[i : i + chunk]):
                got[probe].add(match)
        for t in tuples:
            assert got[t.tid] == expected[t.tid], (t.tid, op1, op2, self_join)

    @settings(max_examples=8, deadline=None)
    @given(
        chunk=st.sampled_from(CHUNKINGS),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_mixed_chunk_sizes_stay_exact(self, chunk, seed):
        # Irregular chunk boundaries (prime-ish sizes mixed in) exercise
        # the merge-boundary scanner at every offset.
        query = QuerySpec.two_inequalities("Q3", JoinType.SELF, Op.GT, Op.LT)
        rng = random.Random(seed)
        tuples = random_tuples(200, seed=seed)
        window = WindowSpec.count(50, 10)
        expected = scalar_pairs(SPOJoin(query, window), tuples)
        join = SPOJoin(query, window)
        pairs = []
        i = 0
        while i < len(tuples):
            step = rng.choice([1, 2, 3, chunk])
            pairs.extend(join.process_many(tuples[i : i + step]))
            i += step
        assert pairs == expected


class TestEvaluateBatch:
    def test_matches_scalar_evaluate(self, q3_query):
        from repro.core.mutable import MutableComponent

        tuples = random_tuples(60, seed=7)
        window = MutableComponent(q3_query)
        for t in tuples[:40]:
            window.insert(t)
        probes = tuples[40:]
        flags = [True] * len(probes)
        expected = [window.evaluate(t, True) for t in probes]
        assert window.evaluate_batch(probes, flags) == expected

    def test_bounds_limit_visibility(self, q3_query):
        from repro.core.mutable import MutableComponent

        tuples = random_tuples(20, seed=8)
        window = MutableComponent(q3_query)
        for t in tuples:
            window.insert(t)
        probe = tuples[-1]
        # bound 0 sees nothing; full bound sees the scalar answer.
        assert window.evaluate_batch([probe], [True], [0]) == [[]]
        full = window.evaluate(probe, True)
        assert window.evaluate_batch([probe], [True], [len(tuples)]) == [full]


class TestProbeBatch:
    @pytest.mark.parametrize("vectorized", [False, True])
    def test_matches_scalar_probe(self, q3_query, vectorized):
        from repro.core.merge import build_merge_batch
        from repro.core.mutable import MutableComponent
        from repro.core.pojoin import POJoinBatch
        from repro.core.pojoin_numpy import VectorPOJoinBatch

        tuples = random_tuples(80, seed=9)
        mutable = MutableComponent(q3_query)
        for t in tuples[:60]:
            mutable.insert(t)
        merged = build_merge_batch(0, q3_query, mutable.trees)
        cls = VectorPOJoinBatch if vectorized else POJoinBatch
        batch = cls(q3_query, merged)
        probes = tuples[60:]
        flags = [True] * len(probes)
        expected = [batch.probe(t, True) for t in probes]
        got = batch.probe_batch(probes, flags)
        assert [sorted(m) for m in got] == [sorted(m) for m in expected]
