"""Run reports: component summaries, PE accounting, markdown rendering."""

import pytest

from repro.bench import RunReport, summarize_run
from repro.core import WindowSpec
from repro.joins import SPOConfig, run_spo
from repro.workloads import q3, self_stream, timed


@pytest.fixture(scope="module")
def report():
    raws = self_stream(400, seed=40)
    result = run_spo(
        timed(raws, rate=2000.0),
        SPOConfig(q3(), WindowSpec.count(100, 20), num_pojoin_pes=2),
    )
    return summarize_run(result)


class TestSummarizeRun:
    def test_discovers_components(self, report):
        assert "mutable_result" in report.components
        assert "immutable_result" in report.components
        assert "merge_built" in report.components

    def test_component_metrics(self, report):
        comp = report.components["immutable_result"]
        # Every tuple is broadcast to both PO-Join PEs: 400 x 2 records.
        assert comp.records == 800
        assert comp.throughput.mean > 0
        assert 0 < comp.latency_p50 <= comp.latency_p95 <= comp.latency_max

    def test_pe_reports(self, report):
        names = {pe.name for pe in report.pes}
        assert any(name.startswith("router") for name in names)
        assert any(name.startswith("pojoin") for name in names)
        for pe in report.pes:
            assert 0.0 <= pe.utilization <= 1.0
            assert pe.mean_wait >= 0.0

    def test_hottest_pe(self, report):
        hottest = report.hottest_pe()
        assert hottest is not None
        assert hottest.utilization == max(p.utilization for p in report.pes)

    def test_markdown_renders(self, report):
        md = report.to_markdown()
        assert md.startswith("## Run report")
        assert "| component |" in md
        assert "immutable_result" in md
        assert "pojoin[0]" in md

    def test_explicit_record_names(self, report):
        # Re-summarize a subset.
        raws = self_stream(100, seed=41)
        from repro.joins import SPOConfig, run_spo

        result = run_spo(
            timed(raws, rate=2000.0),
            SPOConfig(q3(), WindowSpec.count(50, 10)),
        )
        sub = summarize_run(result, record_names=["mutable_result"])
        assert list(sub.components) == ["mutable_result"]

    def test_empty_component(self, report):
        from repro.dspe.engine import RunResult

        empty = summarize_run(
            RunResult([], [], 0.0, 0.0, 0), record_names=["nothing"]
        )
        comp = empty.components["nothing"]
        assert comp.records == 0
        assert comp.latency_max == 0.0
        assert empty.hottest_pe() is None
