"""Bench harness: result tables, local drivers, record extraction."""

import pytest

from repro.bench import (
    ResultTable,
    StreamRunStats,
    build_immutable_list,
    build_mutable_window,
    chunk,
    component_latency,
    component_throughput,
    drive_local,
    time_probes,
)
from repro.core import WindowSpec, make_tuple
from repro.joins import make_spo_join
from repro.workloads import as_stream_tuples, q3, self_stream


class TestResultTable:
    def test_render_aligns_columns(self):
        table = ResultTable("Title", ["a", "bb"])
        table.add_row(1, 2.5)
        table.add_row("long-value", 0.001)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "long-value" in text
        assert all(len(line) <= 80 for line in lines)

    def test_row_width_checked(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = ResultTable("t", ["v"])
        table.add_row(123456.0)
        table.add_row(0.0001)
        table.add_row(0.5)
        table.add_row(0.0)
        rendered = table.render()
        assert "1.23e+05" in rendered
        assert "0.0001" in rendered
        assert "0.500" in rendered

    def test_empty_table_renders(self):
        table = ResultTable("t", ["a"])
        assert "t" in table.render()


class TestDriveLocal:
    def test_counts_and_latencies(self, q3_query):
        window = WindowSpec.count(100, 20)
        tuples = as_stream_tuples(self_stream(300, seed=1))
        stats = drive_local(make_spo_join(q3_query, window), tuples)
        assert stats.tuples == 300
        assert stats.matches > 0
        assert stats.throughput > 0
        assert len(stats.per_tuple) == 300
        assert stats.max_latency >= stats.mean_latency > 0
        assert stats.latency_percentile(50) <= stats.latency_percentile(99)

    def test_latency_sampling(self, q3_query):
        window = WindowSpec.count(100, 20)
        tuples = as_stream_tuples(self_stream(100, seed=2))
        stats = drive_local(
            make_spo_join(q3_query, window), tuples, sample_latency_every=10
        )
        assert len(stats.per_tuple) == 10

    def test_empty_stream(self, q3_query):
        stats = drive_local(
            make_spo_join(q3_query, WindowSpec.count(10, 5)), []
        )
        assert stats.tuples == 0
        assert stats.throughput == 0 or stats.elapsed >= 0
        assert stats.mean_latency == 0.0
        assert stats.max_latency == 0.0


class TestTimeProbes:
    def test_throughput_and_latencies(self):
        calls = []
        probes = [make_tuple(i, "T", i) for i in range(20)]
        tp, lats = time_probes(lambda t: calls.append(t.tid), probes)
        assert len(calls) == 20
        assert tp > 0
        assert len(lats) == 20


class TestComponentExtraction:
    @pytest.fixture
    def run_result(self, q3_query):
        from repro.core import WindowSpec
        from repro.joins import SPOConfig, run_spo
        from repro.workloads import timed

        raws = self_stream(300, seed=3)
        source = timed(raws, rate=1000.0)
        return run_spo(source, SPOConfig(q3_query, WindowSpec.count(100, 20)))

    def test_component_throughput(self, run_result):
        summary = component_throughput(run_result, "immutable_result", 0.05)
        assert summary.count > 0
        assert summary.mean > 0

    def test_component_latency(self, run_result):
        collector = component_latency(run_result, "immutable_result")
        assert len(collector.values) == 300
        assert collector.percentile(50) > 0

    def test_unknown_record_name(self, run_result):
        assert component_throughput(run_result, "nope").count == 0
        assert component_latency(run_result, "nope").values == []


class TestComponentBuilders:
    def test_chunk_splits_evenly(self):
        tuples = [make_tuple(i, "T", i) for i in range(10)]
        pieces = chunk(tuples, 5)
        assert len(pieces) == 5
        assert all(len(p) == 2 for p in pieces)

    def test_chunk_rejects_zero(self):
        with pytest.raises(ValueError):
            chunk([], 0)

    def test_build_mutable_window(self, q3_query):
        tuples = as_stream_tuples(self_stream(50, seed=4))
        comp = build_mutable_window(q3_query, tuples)
        assert len(comp) == 50

    def test_build_immutable_list_self(self, q3_query):
        tuples = as_stream_tuples(self_stream(100, seed=5))
        lst = build_immutable_list(q3_query, tuples, 4, "po")
        assert len(lst) == 4
        assert lst.total_tuples() == 100

    def test_build_immutable_list_cross(self, q1_query):
        from ..conftest import interleaved_rs

        tuples = interleaved_rs(100, seed=6)
        lst = build_immutable_list(q1_query, tuples, 2, "css_bit")
        assert len(lst) == 2
        assert lst.total_tuples() == 100

    def test_unknown_kind_rejected(self, q3_query):
        with pytest.raises(ValueError):
            build_immutable_list(q3_query, [], 1, "btree")


class TestDriveLocalBatched:
    def test_batched_run_matches_scalar(self, q3_query):
        window = WindowSpec.count(100, 20)
        tuples = as_stream_tuples(self_stream(300, seed=3))
        scalar = drive_local(make_spo_join(q3_query, window), tuples)
        batched = drive_local(
            make_spo_join(q3_query, window), tuples, batch_size=16
        )
        assert batched.matches == scalar.matches
        assert batched.tuples == scalar.tuples
        assert batched.batch_size == 16

    def test_per_batch_and_per_tuple_costs(self, q3_query):
        window = WindowSpec.count(100, 20)
        tuples = as_stream_tuples(self_stream(100, seed=4))
        stats = drive_local(
            make_spo_join(q3_query, window), tuples, batch_size=16
        )
        # 100 tuples in chunks of 16 -> 7 process_many calls.
        assert len(stats.per_batch) == 7
        assert len(stats.per_tuple) == 7
        assert stats.mean_batch_cost > stats.mean_latency > 0
        # Amortized costs are batch cost divided by actual chunk length.
        assert stats.per_tuple[0] == pytest.approx(stats.per_batch[0] / 16)
        assert stats.per_tuple[-1] == pytest.approx(stats.per_batch[-1] / 4)

    def test_scalar_run_aliases_per_batch(self, q3_query):
        tuples = as_stream_tuples(self_stream(50, seed=5))
        stats = drive_local(
            make_spo_join(q3_query, WindowSpec.count(20, 5)), tuples
        )
        assert stats.per_batch == stats.per_tuple
        assert stats.batch_size == 1

    def test_invalid_batch_size_rejected(self, q3_query):
        with pytest.raises(ValueError):
            drive_local(
                make_spo_join(q3_query, WindowSpec.count(20, 5)),
                [],
                batch_size=0,
            )
