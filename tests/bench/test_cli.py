"""Experiment CLI: argument handling and a smoke run."""

import pytest

from repro.bench.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_run_single_experiment(self, capsys):
        assert main(["equijoin"]) == 0
        out = capsys.readouterr().out
        assert "hash join" in out
        assert "completed 1 experiment(s)" in out
