"""Experiment CLI: argument handling and a smoke run."""

import pytest

from repro.bench.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_run_single_experiment(self, capsys):
        assert main(["equijoin"]) == 0
        out = capsys.readouterr().out
        assert "hash join" in out
        assert "completed 1 experiment(s)" in out

    def test_batching_experiment_writes_json(self, capsys, tmp_path):
        out_file = tmp_path / "bench_batching.json"
        assert main(["batching", "--json-out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Micro-batching" in out
        import json

        payload = json.loads(out_file.read_text())
        assert payload["experiment"] == "batching"
        sizes = [r["batch_size"] for r in payload["results"]]
        assert sizes == [1, 8, 64]
        matches = {r["matches"] for r in payload["results"]}
        assert len(matches) == 1  # batching never changes results

    def test_batch_size_flag_extends_sweep(self, capsys):
        assert main(["batching", "--batch-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "16" in out

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(SystemExit):
            main(["batching", "--batch-size", "0"])
