"""Experiment CLI: argument handling and a smoke run."""

import pytest

from repro.bench.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_run_single_experiment(self, capsys):
        assert main(["equijoin"]) == 0
        out = capsys.readouterr().out
        assert "hash join" in out
        assert "completed 1 experiment(s)" in out

    def test_batching_experiment_writes_json(self, capsys, tmp_path):
        out_file = tmp_path / "bench_batching.json"
        assert main(["batching", "--json-out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Micro-batching" in out
        import json

        payload = json.loads(out_file.read_text())["batching"]
        assert payload["experiment"] == "batching"
        sizes = [r["batch_size"] for r in payload["results"]]
        assert sizes == [1, 8, 64]
        matches = {r["matches"] for r in payload["results"]}
        assert len(matches) == 1  # batching never changes results

    def test_json_out_merges_experiments(self, capsys, tmp_path):
        out_file = tmp_path / "bench.json"
        assert main(["batching", "--json-out", str(out_file)]) == 0
        assert main(["recovery", "--json-out", str(out_file)]) == 0
        capsys.readouterr()
        import json

        payload = json.loads(out_file.read_text())
        assert set(payload) == {"batching", "recovery"}

    def test_json_out_folds_legacy_flat_file(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "bench.json"
        out_file.write_text(
            json.dumps({"experiment": "batching", "results": []})
        )
        assert main(["recovery", "--json-out", str(out_file)]) == 0
        capsys.readouterr()
        payload = json.loads(out_file.read_text())
        assert set(payload) == {"batching", "recovery"}

    def test_recovery_experiment(self, capsys, tmp_path):
        out_file = tmp_path / "bench_recovery.json"
        assert main(
            ["recovery", "--checkpoint-interval", "0.04",
             "--json-out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "Recovery vs checkpoint interval" in out
        import json

        payload = json.loads(out_file.read_text())["recovery"]
        intervals = [r["checkpoint_interval_s"] for r in payload["results"]]
        assert intervals == [0.02, 0.04, 0.08]
        assert all(r["result_identical"] for r in payload["results"])
        assert all(r["divergent_records"] == 0 for r in payload["results"])
        assert any(r["crashes"] >= 2 for r in payload["results"])

    def test_batch_size_flag_extends_sweep(self, capsys):
        assert main(["batching", "--batch-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "16" in out

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(SystemExit):
            main(["batching", "--batch-size", "0"])

    def test_invalid_crash_rate_rejected(self):
        with pytest.raises(SystemExit):
            main(["recovery", "--crash-rate", "-1"])

    def test_invalid_checkpoint_interval_rejected(self):
        with pytest.raises(SystemExit):
            main(["recovery", "--checkpoint-interval", "0"])

    def test_trace_experiment_reconciles_and_exports(self, capsys, tmp_path):
        import json

        trace_file = tmp_path / "trace.jsonl"
        json_file = tmp_path / "bench_trace.json"
        assert main(
            ["trace", "--trace-out", str(trace_file),
             "--json-out", str(json_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "latency waterfall" in out
        assert "Trace reconciliation" in out

        lines = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
        ]
        assert lines[0]["kind"] == "meta"
        times = [line["at"] for line in lines[1:]]
        assert times == sorted(times)
        # The acceptance bound: per-stage sums reconcile with the
        # end-to-end latency summary within 1%.
        spans = [line for line in lines if line["kind"] == "trace"]
        assert spans
        stage = sum(s["stage_total_s"] for s in spans)
        e2e = sum(s["end_to_end_s"] for s in spans)
        assert abs(stage - e2e) / e2e <= 0.01

        payload = json.loads(json_file.read_text())["trace"]
        assert payload["reconciliation"]["relative_error"] <= 0.01
        assert payload["telemetry"]["trace"]["completed"] > 0

    def test_report_experiment(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Per-PE telemetry" in out
        assert "Event log" in out

    def test_overload_experiment(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "bench_overload.json"
        assert main(
            ["overload", "--tuples", "400", "--queue-capacity", "16",
             "--json-out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "Overload sweep" in out

        payload = json.loads(out_file.read_text())["overload"]
        assert payload["queue_capacity"] == 16
        rows = payload["results"]
        assert {r["policy"] for r in rows} == {"block", "shed", "degrade"}
        at_2x = {r["policy"]: r for r in rows if r["offered_factor"] == 2.0}
        # The deterministic half of the acceptance triangle at 2x
        # overload: block and degrade lose nothing, shed accounts for
        # every tuple (the timing-sensitive p99 ordering is asserted
        # against the committed BENCH.json artifact instead).
        assert at_2x["block"]["shed_tuples"] == 0
        assert at_2x["block"]["results"] == 400
        assert at_2x["degrade"]["shed_tuples"] == 0
        assert at_2x["degrade"]["results"] == 400
        assert at_2x["shed"]["shed_tuples"] > 0
        assert (
            at_2x["shed"]["results"] + at_2x["shed"]["shed_tuples"] == 400
        )
        assert set(payload["sustainable_knee_factor"]) == {
            "block", "shed", "degrade",
        }

    def test_committed_overload_entry_meets_acceptance(self):
        # The acceptance triangle is demonstrated by the committed
        # BENCH.json entry: zero loss under block, exact shed
        # accounting, and degrade's p99 joiner queueing delay below
        # block's at 2x overload.
        import json
        import pathlib

        bench = pathlib.Path(__file__).parents[2] / "BENCH.json"
        payload = json.loads(bench.read_text())["overload"]
        n = payload["stream_tuples"]
        at_2x = {
            r["policy"]: r
            for r in payload["results"]
            if r["offered_factor"] == 2.0
        }
        assert at_2x["block"]["shed_tuples"] == 0
        assert at_2x["block"]["results"] == n
        assert at_2x["shed"]["shed_tuples"] > 0
        assert at_2x["shed"]["results"] + at_2x["shed"]["shed_tuples"] == n
        assert (
            at_2x["degrade"]["p99_joiner_wait_s"]
            < at_2x["block"]["p99_joiner_wait_s"]
        )

    def test_arena_experiment(self, capsys, tmp_path):
        out_file = tmp_path / "bench_arena.json"
        assert main(
            ["arena", "--tuples", "300", "--json-out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "Backend parity" in out
        import json

        payload = json.loads(out_file.read_text())["arena"]
        paths = payload["paths"]
        assert paths["object"]["matches"] == paths["arena"]["matches"]
        rows = payload["backend_parity"]
        assert [r["batch_size"] for r in rows] == [1, 7, 64]
        assert all(r["identical"] for r in rows)

    def test_committed_arena_entry_meets_acceptance(self):
        # The committed BENCH.json entry demonstrates the cross-backend
        # fingerprint gate and object/arena match equality.
        import json
        import pathlib

        bench = pathlib.Path(__file__).parents[2] / "BENCH.json"
        payload = json.loads(bench.read_text())["arena"]
        paths = payload["paths"]
        assert paths["object"]["matches"] == paths["arena"]["matches"]
        assert all(r["identical"] for r in payload["backend_parity"])
        batching = json.loads(bench.read_text())["batching"]
        top = max(r["batch_size"] for r in batching["results"])
        (speedup,) = [
            r["speedup_vs_scalar"]
            for r in batching["results"]
            if r["batch_size"] == top
        ]
        assert speedup >= 2.0  # the committed arena-plane batching win

    def test_committed_skew_entry_meets_acceptance(self):
        # The committed BENCH.json entry demonstrates the adaptive
        # acceptance bar: every parity run (including live split+merge
        # migrations) bit-identical to the reference, and the adaptive
        # sustained-rate knee above the static-cut knee on the hot-band
        # sweep.
        import json
        import pathlib

        bench = pathlib.Path(__file__).parents[2] / "BENCH.json"
        payload = json.loads(bench.read_text())["skew"]
        assert all(r["identical"] for r in payload["parity"])
        assert all(r["repartitions"] >= 1 for r in payload["parity"])
        stats = payload["parity_repartitions"]
        assert stats["splits"] >= 1 and stats["merges"] >= 1
        knees = payload["knee_tps"]
        assert knees["adaptive"] > knees["static"]
        assert payload["knee_gain"] > 1.0

    def test_overload_single_policy(self, capsys):
        assert main(["overload", "--tuples", "300", "--policy", "shed"]) == 0
        out = capsys.readouterr().out
        assert "shed" in out
        assert "block " not in out

    def test_invalid_overload_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["overload", "--queue-capacity", "0"])
        with pytest.raises(SystemExit):
            main(["overload", "--source-rate", "0"])
        with pytest.raises(SystemExit):
            main(["overload", "--tuples", "0"])

    def test_recovery_trace_out_written(self, capsys, tmp_path):
        import json

        trace_file = tmp_path / "chaos.jsonl"
        assert main(["recovery", "--trace-out", str(trace_file)]) == 0
        capsys.readouterr()
        lines = trace_file.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["experiment"] == "recovery"
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "event" in kinds
